//! CARP-style explicit interlocking (§2.2): each instruction carries a
//! **bit mask of pipelines** it must wait for; the hardware stalls until
//! every *in-flight* operation in each masked pipeline has completed. This
//! is the coarse variant the paper attributes to CARP [DiS89] — per
//! *resource*, not per producing instruction — so it is conservative: if
//! another operation entered the producer's pipeline after the producer,
//! the consumer waits for that one too.
//!
//! The interesting, testable consequences:
//!
//! * CARP execution is always **hazard-free** (safety);
//! * its total time is **never shorter** than precise interlock hardware;
//! * with at most one operation in flight per pipeline the two coincide.
//!
//! `conservatism` quantifies the per-schedule cost of the coarse encoding —
//! an experiment the paper's framework enables but does not run.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;

/// A schedule annotated with per-instruction pipeline wait masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarpProgram {
    /// Instructions in issue order.
    pub order: Vec<TupleId>,
    /// `masks[k]` = bit `p` set ⇒ instruction `k` waits for every operation
    /// in flight in pipeline `p` to complete before issuing.
    pub masks: Vec<u64>,
}

/// Tag `order` with the masks a CARP compiler would emit: each instruction
/// waits on the pipelines of all its flow producers. (Conflict spacing on
/// its own pipeline is handled by the same mechanism: the instruction also
/// masks its own pipeline when the enqueue time exceeds 1.)
pub fn tag_carp(tm: &TimingModel, order: &[TupleId]) -> CarpProgram {
    let masks = order
        .iter()
        .map(|&t| {
            let mut mask = 0u64;
            for &(from, _) in &tm.dep_delays[t.index()] {
                if let Some(p) = tm.sigma[from.index()] {
                    mask |= 1 << p.index();
                }
            }
            if let Some(p) = tm.sigma[t.index()] {
                if tm.enqueue[t.index()] > 1 {
                    mask |= 1 << p.index();
                }
            }
            mask
        })
        .collect();
    CarpProgram {
        order: order.to_vec(),
        masks,
    }
}

/// Result of executing a CARP-tagged program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarpReport {
    /// Total execution cycles.
    pub total_cycles: u64,
    /// Total stall cycles the mask mechanism inserted.
    pub total_stalls: u64,
}

impl CarpProgram {
    /// Execute on mask-waiting hardware over `tm`, verifying hazard
    /// freedom. The hardware model: pipeline `p` is "busy for dependence"
    /// until `issue + latency` of the most recent operation it accepted,
    /// and "busy for reuse" until `issue + enqueue`.
    pub fn execute(&self, tm: &TimingModel) -> CarpReport {
        let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
        // Per pipeline: completion time of the most recent operation.
        let mut pipe_complete: Vec<u64> = vec![0; tm.pipeline_count];
        let mut pipe_reuse: Vec<u64> = vec![0; tm.pipeline_count];
        let mut cycle: u64 = 0;
        let mut stalls: u64 = 0;
        let mut first = true;

        for (&t, &mask) in self.order.iter().zip(&self.masks) {
            let baseline = if first { 0 } else { cycle + 1 };
            first = false;
            let mut earliest = baseline;
            for (p, &complete) in pipe_complete.iter().enumerate() {
                if mask & (1 << p) != 0 {
                    earliest = earliest.max(complete);
                }
            }
            if let Some(p) = tm.sigma[t.index()] {
                earliest = earliest.max(pipe_reuse[p.index()]);
            }
            stalls += earliest - baseline;
            // The mask mechanism must subsume precise interlocking.
            assert!(
                tm.can_issue_at(t, earliest, &issued),
                "CARP mask under-waited: hazard at cycle {earliest}"
            );
            issued[t.index()] = Some(earliest);
            if let Some(p) = tm.sigma[t.index()] {
                pipe_complete[p.index()] = earliest + u64::from(tm.result_delay[t.index()]);
                pipe_reuse[p.index()] = earliest + u64::from(tm.enqueue[t.index()]);
            }
            cycle = earliest;
        }

        CarpReport {
            total_cycles: if self.order.is_empty() { 0 } else { cycle + 1 },
            total_stalls: stalls,
        }
    }
}

/// Extra cycles the coarse CARP masks cost relative to precise interlock
/// hardware for the same order.
pub fn conservatism(tm: &TimingModel, order: &[TupleId]) -> u64 {
    let precise = crate::interlock::simulate_interlock(tm, order).total_cycles;
    let carp = tag_carp(tm, order).execute(tm).total_cycles;
    carp - precise
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn tm_of(block: &pipesched_ir::BasicBlock) -> TimingModel {
        let dag = DepDag::build(block);
        TimingModel::new(block, &dag, &presets::paper_simulation())
    }

    #[test]
    fn simple_chain_matches_interlock() {
        // One op in flight per pipeline at a time ⇒ masks are precise.
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        assert_eq!(conservatism(&tm, &order), 0);
        let carp = tag_carp(&tm, &order).execute(&tm);
        assert_eq!(carp.total_cycles, 7);
    }

    #[test]
    fn masks_reference_producers_pipelines() {
        let mut b = BlockBuilder::new("mask");
        let x = b.load("x"); // loader = pipeline 0
        let m = b.mul(x, x); // multiplier = pipeline 2, enqueue 2 > 1
        b.store("z", m);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        let prog = tag_carp(&tm, &order);
        assert_eq!(prog.masks[0], 0, "load depends on nothing");
        assert_eq!(prog.masks[1], 0b101, "mul waits on loader + its own pipe");
        assert_eq!(prog.masks[2], 0b100, "store waits on the multiplier");
    }

    #[test]
    fn coarse_masks_are_conservative_with_pipelined_loads() {
        // load a; load b; use a: the precise interlock only waits for
        // load a, but the mask waits for the *latest* loader operation
        // (load b), costing a cycle.
        let mut b = BlockBuilder::new("cons");
        let a = b.load("a");
        b.load("b");
        let n = b.neg(a); // adder, depends only on load a
        b.store("r", n);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        assert!(conservatism(&tm, &order) >= 1, "expected mask overshoot");
    }

    #[test]
    fn carp_never_beats_interlock_on_random_orders() {
        use crate::interlock::simulate_interlock;
        let mut b = BlockBuilder::new("rand");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        // Try program order and one permuted legal order.
        for order in [
            block.ids().collect::<Vec<_>>(),
            [1u32, 0, 3, 2, 5, 4].map(TupleId).to_vec(),
        ] {
            let precise = simulate_interlock(&tm, &order).total_cycles;
            let carp = tag_carp(&tm, &order).execute(&tm).total_cycles;
            assert!(carp >= precise);
        }
    }

    #[test]
    fn empty_program() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let tm = tm_of(&block);
        let report = tag_carp(&tm, &[]).execute(&tm);
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.total_stalls, 0);
    }
}
