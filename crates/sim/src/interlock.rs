//! Implicit-interlock hardware (§2.2): the processor checks each
//! instruction just before issue and stalls until its dependences and
//! conflicts clear. The compiler emits the bare schedule; delay comes from
//! hardware bubbles instead of NOPs.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;

/// What the interlocked machine did with one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterlockReport {
    /// Issue cycle of each instruction, in schedule order.
    pub issue: Vec<u64>,
    /// Stall (bubble) cycles inserted before each instruction.
    pub stalls: Vec<u64>,
    /// Total stall cycles.
    pub total_stalls: u64,
    /// Total execution cycles (last issue + 1; 0 for an empty schedule).
    pub total_cycles: u64,
}

/// Execute `order` on implicit-interlock hardware.
pub fn simulate_interlock(tm: &TimingModel, order: &[TupleId]) -> InterlockReport {
    let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
    let mut issue = Vec::with_capacity(order.len());
    let mut stalls = Vec::with_capacity(order.len());
    let mut cycle: u64 = 0;
    for &t in order {
        let mut waited = 0;
        while !tm.can_issue_at(t, cycle, &issued) {
            cycle += 1;
            waited += 1;
        }
        issued[t.index()] = Some(cycle);
        issue.push(cycle);
        stalls.push(waited);
        cycle += 1;
    }
    let total_stalls = stalls.iter().sum();
    InterlockReport {
        total_cycles: issue.last().map_or(0, |&l| l + 1),
        issue,
        stalls,
        total_stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn interlock_counts_bubbles() {
        let mut b = BlockBuilder::new("il");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let r = simulate_interlock(&tm, &order);
        assert_eq!(r.issue, vec![0, 2, 6]);
        assert_eq!(r.stalls, vec![0, 1, 3]);
        assert_eq!(r.total_stalls, 4);
        assert_eq!(r.total_cycles, 7);
    }

    #[test]
    fn empty_schedule_runs_zero_cycles() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let r = simulate_interlock(&tm, &[]);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.total_stalls, 0);
    }

    #[test]
    fn stall_free_schedule_has_no_bubbles() {
        let mut b = BlockBuilder::new("sf");
        let x = b.load("x");
        let y = b.load("y");
        b.store("a", x);
        b.store("b", y);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let r = simulate_interlock(&tm, &order);
        assert_eq!(r.total_stalls, 0);
        assert_eq!(r.total_cycles, 4);
    }
}
