//! Tera-style explicit interlocking via a **lookahead field** (§2.2): the
//! compiler tags each instruction with "the next `L` instructions are
//! independent of this one", and the hardware lets at most `L` subsequent
//! instructions issue before this one's result is complete. (The paper
//! cites B. Smith's Tera machine for the count-field flavor of explicit
//! interlock; the real Tera MTA used a 3-bit field.)
//!
//! The interesting engineering consequence is the **field width**: with an
//! unbounded field the mechanism exactly matches precise interlock
//! hardware, but a `w`-bit field clamps `L ≤ 2^w - 1`, forcing spurious
//! waits whenever more than `2^w - 1` independent instructions could have
//! run under a long-latency operation. [`lookahead_penalty`] measures that
//! cost per schedule — exactly the experiment a compiler writer targeting
//! such an encoding needs.

use pipesched_ir::TupleId;

use crate::timing_model::TimingModel;

/// A schedule tagged with per-instruction lookahead counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeraProgram {
    /// Instructions in issue order.
    pub order: Vec<TupleId>,
    /// `lookahead[k]`: how many following instructions may issue before
    /// instruction `k` completes.
    pub lookahead: Vec<u32>,
}

/// Compute each instruction's true dependence distance and clamp it to the
/// field capacity (`max_lookahead`; use `u32::MAX` for an ideal unbounded
/// field).
///
/// `lookahead[k]` = (distance in instructions to the first later
/// instruction that depends on or conflicts with `k`) − 1, clamped.
/// Instructions nothing ever waits on get the maximum value.
pub fn tag_lookahead(tm: &TimingModel, order: &[TupleId], max_lookahead: u32) -> TeraProgram {
    let n = order.len();
    let mut position = vec![usize::MAX; tm.len()];
    for (k, &t) in order.iter().enumerate() {
        position[t.index()] = k;
    }

    let mut lookahead = vec![max_lookahead; n];
    for (k, &t) in order.iter().enumerate() {
        // First later instruction that genuinely needs t's *completion*:
        // a dependence with delay > 1. Anti/output edges (delay 1) are
        // satisfied by in-order issue, and same-pipeline conflicts are
        // enforced architecturally by the pipeline itself, so neither
        // shortens the tag.
        let mut first_waiter: Option<usize> = None;
        for (j, &u) in order.iter().enumerate().skip(k + 1) {
            let needs_completion = tm.dep_delays[u.index()]
                .iter()
                .any(|&(from, delay)| from == t && delay > 1);
            if needs_completion {
                first_waiter = Some(j);
                break;
            }
        }
        if let Some(j) = first_waiter {
            lookahead[k] = ((j - k - 1) as u32).min(max_lookahead);
        }
    }
    TeraProgram {
        order: order.to_vec(),
        lookahead,
    }
}

/// Execution report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeraReport {
    /// Total execution cycles.
    pub total_cycles: u64,
    /// Stall cycles attributable to the lookahead mechanism.
    pub total_stalls: u64,
}

impl TeraProgram {
    /// Execute on lookahead hardware over `tm`: before issuing instruction
    /// `j`, wait until every earlier instruction `i` with
    /// `i + lookahead[i] < j` has **completed** (issue + result delay) and
    /// every same-pipeline predecessor has cleared its enqueue time.
    /// Verifies hazard freedom (panics if a tag permits a hazard —
    /// `tag_lookahead` never produces such tags, which is itself a tested
    /// property).
    pub fn execute(&self, tm: &TimingModel) -> TeraReport {
        let n = self.order.len();
        let mut issued: Vec<Option<u64>> = vec![None; tm.len()];
        let mut issue_at = vec![0u64; n];
        let mut cycle: u64 = 0;
        let mut stalls: u64 = 0;

        for j in 0..n {
            let t = self.order[j];
            let baseline = if j == 0 { 0 } else { cycle + 1 };
            let mut earliest = baseline;
            #[allow(clippy::needless_range_loop)]
            for i in 0..j {
                // Lookahead barrier.
                if (i as u64) + u64::from(self.lookahead[i]) < j as u64 {
                    let u = self.order[i];
                    earliest = earliest.max(issue_at[i] + u64::from(tm.result_delay[u.index()]));
                }
                // Same-pipeline enqueue spacing is architectural (the pipe
                // physically can't accept the op earlier).
                let u = self.order[i];
                if tm.sigma[u.index()].is_some() && tm.sigma[u.index()] == tm.sigma[t.index()] {
                    earliest = earliest.max(issue_at[i] + u64::from(tm.enqueue[u.index()]));
                }
            }
            stalls += earliest - baseline;
            assert!(
                tm.can_issue_at(t, earliest, &issued),
                "lookahead tags allowed a hazard at instruction {j}"
            );
            issued[t.index()] = Some(earliest);
            issue_at[j] = earliest;
            cycle = earliest;
        }
        TeraReport {
            total_cycles: if n == 0 { 0 } else { cycle + 1 },
            total_stalls: stalls,
        }
    }
}

/// Extra cycles a `w`-bit lookahead field costs relative to precise
/// interlock hardware for the same order.
pub fn lookahead_penalty(tm: &TimingModel, order: &[TupleId], field_bits: u32) -> u64 {
    let max = if field_bits >= 32 {
        u32::MAX
    } else {
        (1u32 << field_bits) - 1
    };
    let precise = crate::interlock::simulate_interlock(tm, order).total_cycles;
    let tera = tag_lookahead(tm, order, max).execute(tm).total_cycles;
    tera - precise
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn tm_of(block: &pipesched_ir::BasicBlock) -> TimingModel {
        let dag = DepDag::build(block);
        TimingModel::new(block, &dag, &presets::deep_pipeline())
    }

    #[test]
    fn unbounded_field_matches_interlock() {
        let mut b = BlockBuilder::new("un");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        assert_eq!(lookahead_penalty(&tm, &order, 32), 0);
    }

    #[test]
    fn tags_measure_dependence_distance() {
        let mut b = BlockBuilder::new("tags");
        let x = b.load("x"); // consumer 3 slots later
        let _y = b.load("y");
        let z = b.load("z");
        let n = b.neg(x);
        b.store("r", n);
        b.store("keep", z);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        let prog = tag_lookahead(&tm, &order, u32::MAX);
        // x's first waiter is neg at position 3: lookahead = 2.
        assert_eq!(prog.lookahead[0], 2);
        // y is never waited on.
        assert_eq!(prog.lookahead[1], u32::MAX);
    }

    #[test]
    fn narrow_field_costs_cycles() {
        // A long-latency load with many independent instructions under it:
        // a 1-bit field (max lookahead 1) forces early waits.
        let mut b = BlockBuilder::new("narrow");
        let x = b.load("x"); // latency 5 on deep-pipeline
        for i in 0..6 {
            let c = b.constant(i);
            b.store(&format!("k{i}"), c);
        }
        let n = b.neg(x);
        b.store("r", n);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        let ideal = lookahead_penalty(&tm, &order, 32);
        let narrow = lookahead_penalty(&tm, &order, 1);
        assert_eq!(ideal, 0);
        assert!(narrow > 0, "1-bit field should stall early");
        // Wider fields monotonically reduce the penalty.
        let mid = lookahead_penalty(&tm, &order, 2);
        assert!(mid <= narrow);
        assert!(lookahead_penalty(&tm, &order, 3) <= mid);
    }

    #[test]
    fn zero_lookahead_serializes_to_completion() {
        // max_lookahead = 0: every instruction waits for its predecessor's
        // completion — fully serialized.
        let mut b = BlockBuilder::new("serial");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        let tm = tm_of(&block);
        let order: Vec<_> = block.ids().collect();
        let prog = tag_lookahead(&tm, &order, 0);
        let report = prog.execute(&tm);
        let precise = crate::interlock::simulate_interlock(&tm, &order).total_cycles;
        assert!(report.total_cycles >= precise);
    }

    #[test]
    fn empty_program() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let tm = tm_of(&block);
        let report = tag_lookahead(&tm, &[], 3).execute(&tm);
        assert_eq!(report.total_cycles, 0);
    }
}
