//! Cycle-by-cycle execution traces, for the examples and for debugging.

use std::fmt;

use pipesched_ir::{BasicBlock, TupleId};

use crate::interlock::simulate_interlock;
use crate::timing_model::TimingModel;

/// One cycle of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An instruction issued.
    Issue(TupleId),
    /// A hardware bubble / NOP slot.
    Bubble,
}

/// A complete execution trace of a schedule on interlocked hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// One event per cycle.
    pub events: Vec<Event>,
}

impl Trace {
    /// Trace `order` on interlock hardware over `tm`.
    pub fn capture(tm: &TimingModel, order: &[TupleId]) -> Trace {
        let report = simulate_interlock(tm, order);
        let mut events = Vec::with_capacity(report.total_cycles as usize);
        for (&t, &at) in order.iter().zip(&report.issue) {
            while (events.len() as u64) < at {
                events.push(Event::Bubble);
            }
            events.push(Event::Issue(t));
        }
        Trace { events }
    }

    /// Number of bubble cycles.
    pub fn bubbles(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Bubble))
            .count()
    }

    /// Total cycles.
    pub fn cycles(&self) -> usize {
        self.events.len()
    }

    /// Render with instruction text from `block`.
    pub fn render(&self, block: &BasicBlock) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (cycle, e) in self.events.iter().enumerate() {
            match e {
                Event::Bubble => {
                    let _ = writeln!(out, "cycle {cycle:3}:   (bubble)");
                }
                Event::Issue(t) => {
                    let _ = writeln!(out, "cycle {cycle:3}:   {}", block.tuple(*t));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn trace_shows_bubbles_at_right_cycles() {
        let mut b = BlockBuilder::new("tr");
        let x = b.load("x");
        let m = b.mul(x, x);
        b.store("z", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let tm = TimingModel::new(&block, &dag, &machine);
        let order: Vec<_> = block.ids().collect();
        let trace = Trace::capture(&tm, &order);
        assert_eq!(trace.cycles(), 7);
        assert_eq!(trace.bubbles(), 4);
        assert_eq!(trace.events[0], Event::Issue(TupleId(0)));
        assert_eq!(trace.events[1], Event::Bubble);
        assert_eq!(trace.events[2], Event::Issue(TupleId(1)));
        let text = trace.render(&block);
        assert!(text.contains("(bubble)"));
        assert!(text.contains("Mul"), "{text}");
    }
}
