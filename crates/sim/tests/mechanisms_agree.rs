//! The paper's §2.2 claim, as executable property tests: the three
//! architectural delay mechanisms (implicit interlock, explicit wait tags,
//! NOP padding) are interchangeable — for any legal schedule they yield the
//! same total execution time, and the stall/wait/NOP counts coincide.

use proptest::prelude::*;

use pipesched_ir::{BasicBlock, BlockBuilder, DepDag, Op, TupleId};
use pipesched_machine::{presets, Machine};
use pipesched_sim::{issue_times, pad_schedule, simulate_interlock, tag_schedule, TimingModel};

/// Deterministic random block from a byte script (valid by construction).
fn block_from_script(script: &[u8]) -> BasicBlock {
    let mut b = BlockBuilder::new("prop");
    let vars = ["p", "q", "r"];
    for chunk in script.chunks(3) {
        let (op, x, y) = (
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(1),
        );
        let n = b.len();
        match op % 5 {
            0 | 4 => {
                b.load(vars[x as usize % vars.len()]);
            }
            1 => {
                b.constant(i64::from(x));
            }
            _ if n > 0 => {
                // Reference the most recent value-producing tuple(s).
                let producers: Vec<TupleId> = {
                    let blk = b.clone().finish_unchecked();
                    blk.ids()
                        .filter(|&i| blk.tuple(i).op.produces_value())
                        .collect()
                };
                if producers.is_empty() {
                    b.load(vars[y as usize % vars.len()]);
                } else if op % 5 == 2 {
                    let l = producers[x as usize % producers.len()];
                    let r = producers[y as usize % producers.len()];
                    let ops = [Op::Add, Op::Sub, Op::Mul, Op::Div];
                    b.binary(ops[(x ^ y) as usize % 4], l, r);
                } else {
                    let v = producers[x as usize % producers.len()];
                    b.store(vars[y as usize % vars.len()], v);
                }
            }
            _ => {
                b.load(vars[y as usize % vars.len()]);
            }
        }
    }
    if b.is_empty() {
        b.load("p");
    }
    b.finish().expect("valid by construction")
}

fn machines() -> Vec<Machine> {
    presets::all_presets()
}

/// A random legal topological order driven by the selector bytes.
fn random_topo_order(dag: &DepDag, selectors: &[u8]) -> Vec<TupleId> {
    let n = dag.len();
    let mut pending: Vec<u32> = (0..n)
        .map(|i| dag.preds(TupleId(i as u32)).len() as u32)
        .collect();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for step in 0..n {
        let ready: Vec<usize> = (0..n).filter(|&i| !placed[i] && pending[i] == 0).collect();
        let sel = selectors.get(step).copied().unwrap_or(0) as usize % ready.len();
        let pick = ready[sel];
        placed[pick] = true;
        for e in dag.succs(TupleId(pick as u32)) {
            pending[e.to.index()] -= 1;
        }
        order.push(TupleId(pick as u32));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn three_mechanisms_agree(
        script in proptest::collection::vec(any::<u8>(), 1..45),
        selectors in proptest::collection::vec(any::<u8>(), 16),
        machine_sel in 0usize..6,
    ) {
        let block = block_from_script(&script);
        let dag = DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let tm = TimingModel::new(&block, &dag, machine);
        let order = random_topo_order(&dag, &selectors);

        // 1. Implicit interlock.
        let interlock = simulate_interlock(&tm, &order);

        // 2. Explicit wait tags.
        let explicit = tag_schedule(&tm, &order);
        let explicit_cycles = explicit.execute(&tm).unwrap();

        // 3. NOP padding (etas derived from ground-truth issue times).
        let issue = issue_times(&tm, &order);
        let etas: Vec<u32> = issue
            .iter()
            .scan(None::<u64>, |prev, &t| {
                let eta = match *prev {
                    Some(p) => (t - p - 1) as u32,
                    None => t as u32,
                };
                *prev = Some(t);
                Some(eta)
            })
            .collect();
        let padded = pad_schedule(&order, &etas);
        let padded_cycles = padded.execute(&tm).unwrap();

        prop_assert_eq!(interlock.total_cycles, explicit_cycles);
        prop_assert_eq!(interlock.total_cycles, padded_cycles);
        prop_assert_eq!(interlock.total_stalls, explicit.total_waits());
        prop_assert_eq!(interlock.total_stalls as usize, padded.nop_count());
        // And the padding is exactly the hardware minimum for this order.
        prop_assert!(padded.is_minimally_padded(&tm));

        // 4. CARP-style coarse pipeline masks: always hazard-free (the
        // executor asserts this) and never faster than precise interlock.
        let carp = pipesched_sim::tag_carp(&tm, &order).execute(&tm);
        prop_assert!(carp.total_cycles >= interlock.total_cycles);

        // 5. Tera-style lookahead fields: an unbounded field matches
        // precise interlock exactly; narrower fields only add cycles,
        // monotonically.
        let ideal = pipesched_sim::tag_lookahead(&tm, &order, u32::MAX).execute(&tm);
        prop_assert_eq!(ideal.total_cycles, interlock.total_cycles);
        let mut prev = ideal.total_cycles;
        for bits in [3u32, 2, 1, 0] {
            let max = if bits == 0 { 0 } else { (1u32 << bits) - 1 };
            let clamped = pipesched_sim::tag_lookahead(&tm, &order, max).execute(&tm);
            prop_assert!(clamped.total_cycles >= prev,
                "narrower field got faster: {} bits", bits);
            prev = clamped.total_cycles;
        }
    }
}
