//! Lock-cheap service counters.
//!
//! Every counter is a relaxed atomic — the request hot path never takes a
//! lock to record metrics. Latency lands in a fixed log₂-bucketed histogram
//! (1 µs … ~17 min), from which p50/p90/p99 are estimated at dump time by
//! midpoint interpolation inside the winning bucket. [`SearchAggregate`]
//! folds every [`SearchStats`] the engine produces into fleet-wide search
//! effort, re-checking the `1 + Ω − bound-pruned == nodes` identity on the
//! aggregate, and [`Metrics::write_prometheus`] renders the whole snapshot
//! as Prometheus text for the `/metrics` endpoint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use pipesched_core::{Backend, SearchStats};
use pipesched_json::Json;
use pipesched_trace::prom::PromWriter;

use crate::engine::Tier;

const BUCKETS: usize = 30; // bucket b covers [2^b, 2^(b+1)) microseconds

/// Observations at or above this land in the sparse exact tail as well as
/// their log₂ bucket, so tail quantiles (p99, p99.9) and SLO burn-rate
/// math answer exact values instead of bucket midpoints. 8192 µs is the
/// floor of bucket 13 — cheap requests (the overwhelming majority) never
/// touch the tail's mutex.
pub const TAIL_FLOOR_MICROS: u64 = 8_192;

/// Log₂-bucketed latency histogram over microseconds, with a sparse
/// high-resolution tail: every observation ≥ [`TAIL_FLOOR_MICROS`] is
/// also counted exactly, so quantiles that land in the tail are exact.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    /// Exact value → count for observations ≥ [`TAIL_FLOOR_MICROS`].
    /// Slow requests are rare by definition, so this mutex is cold.
    tail: Mutex<BTreeMap<u64, u64>>,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, micros: u64) {
        let b = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        if micros >= TAIL_FLOOR_MICROS {
            let mut tail = self.tail.lock().unwrap_or_else(PoisonError::into_inner);
            *tail.entry(micros).or_insert(0) += 1;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) in microseconds. The rank-`r`
    /// observation is placed at the midpoint of its 1/c share of the
    /// winning bucket (`(r − seen − ½)/c` of the way through), so a
    /// single-observation bucket answers its middle rather than its upper
    /// edge — the upper-edge answer overstated p50/p99 by up to 2×.
    /// Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let tail_bucket = TAIL_FLOOR_MICROS.trailing_zeros() as usize;
        let below_tail: u64 = self.buckets[..tail_bucket]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        if rank > below_tail {
            // The rank lands in the tail: answer the exact observation.
            let tail = self.tail.lock().unwrap_or_else(PoisonError::into_inner);
            let mut seen = below_tail;
            for (&micros, &c) in tail.iter() {
                seen += c;
                if seen >= rank {
                    return micros;
                }
            }
            // A concurrent record() bumped a bucket before its tail entry
            // landed; fall through to the bucket estimate.
        }
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if seen + c >= rank {
                let lo = 1u64 << b;
                let width = lo; // bucket spans [lo, 2*lo)
                let into = ((rank - seen) as f64 - 0.5) / c.max(1) as f64;
                return lo + (width as f64 * into) as u64;
            }
            seen += c;
        }
        1u64 << (BUCKETS - 1)
    }

    /// Observations at or below `micros`: exact above the tail floor,
    /// linearly prorated inside the one straddled log₂ bucket below it.
    /// This is the SLO burn-rate numerator — "how many requests met the
    /// objective" — so tail exactness matters more than bucket exactness
    /// (objectives sit near the tail by construction).
    pub fn count_at_or_below(&self, micros: u64) -> u64 {
        if micros >= TAIL_FLOOR_MICROS {
            let tail_bucket = TAIL_FLOOR_MICROS.trailing_zeros() as usize;
            let below_tail: u64 = self.buckets[..tail_bucket]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum();
            let tail = self.tail.lock().unwrap_or_else(PoisonError::into_inner);
            let in_tail: u64 = tail.range(..=micros).map(|(_, &c)| c).sum();
            return below_tail + in_tail;
        }
        let cut = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        let mut below: u64 = self.buckets[..cut]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let straddled = self.buckets[cut].load(Ordering::Relaxed);
        let lo = 1u64 << cut;
        let frac = (micros - lo + 1) as f64 / lo as f64;
        below += (straddled as f64 * frac) as u64;
        below
    }
}

/// Fleet-wide search effort: every [`SearchStats`] the engine produces,
/// summed. The raw columns count *all* searches (list probes, windowed
/// sub-searches, full B&B runs); the `eligible_*` mirrors count only the
/// completed single searches for which the paper's node identity
/// `nodes == 1 + Ω − bound-pruned` holds per run, so the identity can be
/// re-checked on the aggregate:
/// `eligible_nodes == eligible_searches + eligible_Ω − eligible_pruned`.
#[derive(Debug, Default)]
pub struct SearchAggregate {
    /// Searches recorded (all kinds).
    pub searches: AtomicU64,
    /// Total search-tree nodes visited.
    pub nodes_visited: AtomicU64,
    /// Total Ω calls.
    pub omega_calls: AtomicU64,
    /// Complete schedules reached.
    pub complete_schedules: AtomicU64,
    /// Incumbent improvements.
    pub improvements: AtomicU64,
    /// Candidates rejected by the quick [5a] check.
    pub pruned_quick: AtomicU64,
    /// Candidates rejected by the readiness test [5b].
    pub pruned_legality: AtomicU64,
    /// Candidates rejected by the equivalence filter [5c].
    pub pruned_equivalence: AtomicU64,
    /// Subtrees abandoned by the α-β / lower-bound test [6].
    pub pruned_bound: AtomicU64,
    /// Pipeline-unit choices skipped by symmetry breaking.
    pub pruned_symmetry: AtomicU64,
    /// Identity-eligible searches (single, completed, not proved early).
    pub eligible_searches: AtomicU64,
    /// Nodes visited by identity-eligible searches.
    pub eligible_nodes: AtomicU64,
    /// Ω calls made by identity-eligible searches.
    pub eligible_omega: AtomicU64,
    /// Bound prunes of identity-eligible searches.
    pub eligible_pruned_bound: AtomicU64,
}

impl SearchAggregate {
    /// Fold one run's counters in. `single_search` distinguishes a plain
    /// single-rooted search from multi-root aggregates (the windowed tier
    /// sums its per-window stats, which breaks the per-run identity); a
    /// run joins the eligible set only when it is single, ran to
    /// completion, and did not stop early on the global lower bound.
    pub fn record(&self, stats: &SearchStats, single_search: bool) {
        let add = |c: &AtomicU64, v: u64| {
            c.fetch_add(v, Ordering::Relaxed);
        };
        add(&self.searches, 1);
        add(&self.nodes_visited, stats.nodes_visited);
        add(&self.omega_calls, stats.omega_calls);
        add(&self.complete_schedules, stats.complete_schedules);
        add(&self.improvements, stats.improvements);
        add(&self.pruned_quick, stats.pruned_quick);
        add(&self.pruned_legality, stats.pruned_legality);
        add(&self.pruned_equivalence, stats.pruned_equivalence);
        add(&self.pruned_bound, stats.pruned_bound);
        add(&self.pruned_symmetry, stats.pruned_symmetry);
        if single_search && !stats.truncated && !stats.proved_by_bound && stats.nodes_visited > 0 {
            add(&self.eligible_searches, 1);
            add(&self.eligible_nodes, stats.nodes_visited);
            add(&self.eligible_omega, stats.omega_calls);
            add(&self.eligible_pruned_bound, stats.pruned_bound);
        }
    }

    /// Re-check the paper's node identity on the eligible aggregate:
    /// summing `nodes == 1 + Ω − bound-pruned` over k eligible runs gives
    /// `nodes == k + Ω − bound-pruned`. Vacuously true with no eligible
    /// runs.
    pub fn identity_holds(&self) -> bool {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        load(&self.eligible_nodes) + load(&self.eligible_pruned_bound)
            == load(&self.eligible_searches) + load(&self.eligible_omega)
    }

    /// Per-rule prune totals in a fixed order (for label iteration).
    pub fn prune_totals(&self) -> [(&'static str, u64); 5] {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        [
            ("quick", load(&self.pruned_quick)),
            ("legality", load(&self.pruned_legality)),
            ("equivalence", load(&self.pruned_equivalence)),
            ("bound", load(&self.pruned_bound)),
            ("symmetry", load(&self.pruned_symmetry)),
        ]
    }

    /// Dump the aggregate as a JSON object.
    pub fn to_json(&self) -> Json {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed) as i64;
        pipesched_json::json_object![
            ("searches", load(&self.searches)),
            ("nodes_visited", load(&self.nodes_visited)),
            ("omega_calls", load(&self.omega_calls)),
            ("complete_schedules", load(&self.complete_schedules)),
            ("improvements", load(&self.improvements)),
            ("pruned_quick", load(&self.pruned_quick)),
            ("pruned_legality", load(&self.pruned_legality)),
            ("pruned_equivalence", load(&self.pruned_equivalence)),
            ("pruned_bound", load(&self.pruned_bound)),
            ("pruned_symmetry", load(&self.pruned_symmetry)),
            ("eligible_searches", load(&self.eligible_searches)),
            ("identity_holds", self.identity_holds()),
        ]
    }
}

/// Service-wide counters, dumped as JSON on demand or at shutdown.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received (including failed ones).
    pub requests: AtomicU64,
    /// Requests that failed to parse or schedule.
    pub errors: AtomicU64,
    /// Validated cache hits.
    pub cache_hits: AtomicU64,
    /// Cache lookups that missed (or failed hit validation).
    pub cache_misses: AtomicU64,
    /// Answers produced per tier (cache/list/windowed/bnb).
    pub tier_answers: [AtomicU64; 4],
    /// Ω calls spent per answering tier (cache answers spend none).
    pub tier_omega: [AtomicU64; 4],
    /// Answers produced per concrete solving backend (bnb/sat). A raced
    /// answer counts for the side that won; cache hits count for the
    /// backend that populated the entry.
    pub backend_answers: [AtomicU64; 2],
    /// CDCL conflicts across every SAT query the engine ran.
    pub sat_conflicts: AtomicU64,
    /// CDCL decisions across every SAT query.
    pub sat_decisions: AtomicU64,
    /// CDCL unit propagations across every SAT query.
    pub sat_propagations: AtomicU64,
    /// Requests whose search budget or deadline expired (answer was the
    /// incumbent, `optimal=false`).
    pub budget_exhausted: AtomicU64,
    /// Request blocks that passed the optimizer translation-validation
    /// gate (`verify_opt` on).
    pub opt_verified: AtomicU64,
    /// Request blocks the translation validator rejected (`A05xx`).
    pub opt_rejected: AtomicU64,
    /// Subtree tasks stolen by idle workers of the parallel B&B tier.
    pub parallel_steals: AtomicU64,
    /// Subtree tasks split off by workers of the parallel B&B tier.
    pub parallel_splits: AtomicU64,
    /// Per-request wall-clock latency.
    pub latency: LatencyHistogram,
    /// Per-request latency split by answering tier (cache/list/windowed/
    /// bnb) — the SLO tracker's per-tier objectives read these.
    pub tier_latency: [LatencyHistogram; 4],
    /// Per-request latency split by concrete solving backend (bnb/sat).
    pub backend_latency: [LatencyHistogram; 2],
    /// Fleet-wide search effort across every tier's searches.
    pub search: SearchAggregate,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Count one received request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failed request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request block that passed the optimizer validation gate.
    pub fn record_opt_verified(&self) {
        self.opt_verified.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request block the translation validator rejected.
    pub fn record_opt_rejected(&self) {
        self.opt_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Dense counter slot for a concrete backend. `Race` never reaches
    /// the metrics — the engine resolves every race to the winning side
    /// before recording — but map it to the B&B slot defensively.
    fn backend_index(backend: Backend) -> usize {
        match backend {
            Backend::Sat => 1,
            Backend::Bnb | Backend::Race => 0,
        }
    }

    /// Record the work-distribution counters of one parallel B&B run.
    pub fn record_parallel(&self, steals: u64, splits: u64) {
        self.parallel_steals.fetch_add(steals, Ordering::Relaxed);
        self.parallel_splits.fetch_add(splits, Ordering::Relaxed);
    }

    /// Record the CDCL effort of one SAT-backend run (or the SAT side of
    /// a race).
    pub fn record_sat_effort(&self, conflicts: u64, decisions: u64, propagations: u64) {
        self.sat_conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.sat_decisions.fetch_add(decisions, Ordering::Relaxed);
        self.sat_propagations
            .fetch_add(propagations, Ordering::Relaxed);
    }

    /// Record a completed answer: its tier and backend, cache outcome,
    /// truncation, latency, and the Ω calls it spent.
    pub fn record_answer(
        &self,
        tier: Tier,
        backend: Backend,
        cache_hit: bool,
        truncated: bool,
        micros: u64,
        omega: u64,
    ) {
        self.tier_answers[tier.index()].fetch_add(1, Ordering::Relaxed);
        self.tier_omega[tier.index()].fetch_add(omega, Ordering::Relaxed);
        self.backend_answers[Self::backend_index(backend)].fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if truncated {
            self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(micros);
        self.tier_latency[tier.index()].record(micros);
        self.backend_latency[Self::backend_index(backend)].record(micros);
    }

    /// Dump every counter as a JSON object.
    pub fn to_json(&self) -> Json {
        let tier = |t: Tier| self.tier_answers[t.index()].load(Ordering::Relaxed);
        let omega = |t: Tier| self.tier_omega[t.index()].load(Ordering::Relaxed);
        pipesched_json::json_object![
            ("requests", self.requests.load(Ordering::Relaxed) as i64),
            ("errors", self.errors.load(Ordering::Relaxed) as i64),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed) as i64),
            (
                "cache_misses",
                self.cache_misses.load(Ordering::Relaxed) as i64
            ),
            (
                "budget_exhausted",
                self.budget_exhausted.load(Ordering::Relaxed) as i64
            ),
            (
                "opt_verified",
                self.opt_verified.load(Ordering::Relaxed) as i64
            ),
            (
                "opt_rejected",
                self.opt_rejected.load(Ordering::Relaxed) as i64
            ),
            (
                "tier_answers",
                pipesched_json::json_object![
                    ("cache", tier(Tier::Cache) as i64),
                    ("list", tier(Tier::List) as i64),
                    ("windowed", tier(Tier::Windowed) as i64),
                    ("bnb", tier(Tier::Bnb) as i64),
                ]
            ),
            (
                "tier_omega",
                pipesched_json::json_object![
                    ("cache", omega(Tier::Cache) as i64),
                    ("list", omega(Tier::List) as i64),
                    ("windowed", omega(Tier::Windowed) as i64),
                    ("bnb", omega(Tier::Bnb) as i64),
                ]
            ),
            (
                "backend_answers",
                pipesched_json::json_object![
                    (
                        "bnb",
                        self.backend_answers[0].load(Ordering::Relaxed) as i64
                    ),
                    (
                        "sat",
                        self.backend_answers[1].load(Ordering::Relaxed) as i64
                    ),
                ]
            ),
            (
                "sat",
                pipesched_json::json_object![
                    (
                        "conflicts",
                        self.sat_conflicts.load(Ordering::Relaxed) as i64
                    ),
                    (
                        "decisions",
                        self.sat_decisions.load(Ordering::Relaxed) as i64
                    ),
                    (
                        "propagations",
                        self.sat_propagations.load(Ordering::Relaxed) as i64
                    ),
                ]
            ),
            (
                "parallel",
                pipesched_json::json_object![
                    (
                        "steals",
                        self.parallel_steals.load(Ordering::Relaxed) as i64
                    ),
                    (
                        "splits",
                        self.parallel_splits.load(Ordering::Relaxed) as i64
                    ),
                ]
            ),
            (
                "latency_micros",
                pipesched_json::json_object![
                    ("count", self.latency.count() as i64),
                    ("mean", self.latency.mean_micros() as i64),
                    ("p50", self.latency.quantile_micros(0.50) as i64),
                    ("p90", self.latency.quantile_micros(0.90) as i64),
                    ("p99", self.latency.quantile_micros(0.99) as i64),
                    ("p999", self.latency.quantile_micros(0.999) as i64),
                ]
            ),
            ("search", self.search.to_json()),
        ]
    }

    /// Write the snapshot as Prometheus text exposition (the `/metrics`
    /// payload; see the README's name/label schema).
    pub fn write_prometheus(&self, w: &mut PromWriter) {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        w.counter(
            "pipesched_requests_total",
            "Scheduling requests received.",
            load(&self.requests),
        );
        w.counter(
            "pipesched_errors_total",
            "Requests that failed to parse or schedule.",
            load(&self.errors),
        );
        w.counter(
            "pipesched_cache_hits_total",
            "Validated schedule-cache hits.",
            load(&self.cache_hits),
        );
        w.counter(
            "pipesched_cache_misses_total",
            "Schedule-cache misses (or failed hit validation).",
            load(&self.cache_misses),
        );
        w.counter(
            "pipesched_budget_exhausted_total",
            "Requests whose node budget or deadline expired.",
            load(&self.budget_exhausted),
        );
        w.counter(
            "pipesched_opt_verified_total",
            "Request blocks that passed the optimizer validation gate.",
            load(&self.opt_verified),
        );
        w.counter(
            "pipesched_opt_rejected_total",
            "Request blocks rejected by the translation validator.",
            load(&self.opt_rejected),
        );
        w.header(
            "pipesched_tier_answers_total",
            "Answers produced, by escalation tier.",
            "counter",
        );
        for t in [Tier::Cache, Tier::List, Tier::Windowed, Tier::Bnb] {
            w.sample_labeled(
                "pipesched_tier_answers_total",
                &[("tier", t.name())],
                load(&self.tier_answers[t.index()]) as f64,
            );
        }
        w.header(
            "pipesched_tier_omega_total",
            "Omega calls spent, by answering tier.",
            "counter",
        );
        for t in [Tier::Cache, Tier::List, Tier::Windowed, Tier::Bnb] {
            w.sample_labeled(
                "pipesched_tier_omega_total",
                &[("tier", t.name())],
                load(&self.tier_omega[t.index()]) as f64,
            );
        }
        w.header(
            "pipesched_backend_answers_total",
            "Answers produced, by concrete solving backend.",
            "counter",
        );
        for (label, slot) in [("bnb", 0usize), ("sat", 1)] {
            w.sample_labeled(
                "pipesched_backend_answers_total",
                &[("backend", label)],
                load(&self.backend_answers[slot]) as f64,
            );
        }
        w.counter(
            "pipesched_sat_conflicts_total",
            "CDCL conflicts across every SAT-backend query.",
            load(&self.sat_conflicts),
        );
        w.counter(
            "pipesched_sat_decisions_total",
            "CDCL decisions across every SAT-backend query.",
            load(&self.sat_decisions),
        );
        w.counter(
            "pipesched_sat_propagations_total",
            "CDCL unit propagations across every SAT-backend query.",
            load(&self.sat_propagations),
        );
        w.counter(
            "pipesched_parallel_steals_total",
            "Subtree tasks stolen by idle workers of the parallel search.",
            load(&self.parallel_steals),
        );
        w.counter(
            "pipesched_parallel_splits_total",
            "Subtree tasks split off by workers of the parallel search.",
            load(&self.parallel_splits),
        );
        w.counter(
            "pipesched_search_nodes_total",
            "Search-tree nodes visited across all searches.",
            load(&self.search.nodes_visited),
        );
        w.counter(
            "pipesched_search_omega_total",
            "Omega calls across all searches.",
            load(&self.search.omega_calls),
        );
        w.header(
            "pipesched_search_pruned_total",
            "Candidates pruned, by rule.",
            "counter",
        );
        for (rule, total) in self.search.prune_totals() {
            w.sample_labeled(
                "pipesched_search_pruned_total",
                &[("rule", rule)],
                total as f64,
            );
        }
        w.gauge(
            "pipesched_search_identity_ok",
            "1 when the aggregate satisfies nodes == searches + omega - bound-pruned.",
            if self.search.identity_holds() {
                1.0
            } else {
                0.0
            },
        );
        w.header(
            "pipesched_request_latency_micros",
            "Per-request wall-clock latency, microseconds.",
            "summary",
        );
        for (label, q) in [
            ("0.5", 0.50),
            ("0.9", 0.90),
            ("0.99", 0.99),
            ("0.999", 0.999),
        ] {
            w.sample_labeled(
                "pipesched_request_latency_micros",
                &[("quantile", label)],
                self.latency.quantile_micros(q) as f64,
            );
        }
        w.sample(
            "pipesched_request_latency_micros_sum",
            self.latency.sum_micros() as f64,
        );
        w.sample(
            "pipesched_request_latency_micros_count",
            self.latency.count() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 30, 40, 1000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_micros(0.5);
        assert!((16..64).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!((512..2048).contains(&p99), "p99 = {p99}");
        assert_eq!(h.mean_micros(), (10 + 20 + 30 + 40 + 1000) / 5);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn interpolated_quantiles_track_exact_quantiles() {
        // Uniform 1..=1000 µs: exact p50 = 500, p90 = 900, p99 = 990.
        // A log₂ histogram cannot be exact, but midpoint interpolation
        // must land within a few percent; the old upper-edge answer gave
        // p50 = 512..768-ish errors up to 2×.
        let h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let est = h.quantile_micros(q) as f64;
            let err = (est - exact).abs() / exact;
            assert!(err < 0.05, "q={q}: est {est} vs exact {exact} ({err:.3})");
        }
        // Monotone in q.
        assert!(h.quantile_micros(0.5) <= h.quantile_micros(0.9));
        assert!(h.quantile_micros(0.9) <= h.quantile_micros(0.99));
    }

    #[test]
    fn tail_quantiles_are_exact_above_the_floor() {
        // Uniform 1..=10000 µs: every observation ≥ 8192 also lands in
        // the exact tail, so p99/p99.9 must be *exact*, not bucket
        // midpoints — bucket 13 alone spans 8192..16384 µs, a 2× smear.
        let h = LatencyHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_micros(0.99), 9_900);
        assert_eq!(h.quantile_micros(0.999), 9_990);
        assert_eq!(h.quantile_micros(1.0), 10_000);
        // Below the tail floor the estimate stays interpolated.
        let p50 = h.quantile_micros(0.50);
        assert!((est_err(p50, 5_000.0)) < 0.05, "p50 = {p50}");
    }

    fn est_err(est: u64, exact: f64) -> f64 {
        (est as f64 - exact).abs() / exact
    }

    #[test]
    fn count_at_or_below_is_exact_in_the_tail_and_prorated_below() {
        let h = LatencyHistogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        // Above the floor: exact.
        assert_eq!(h.count_at_or_below(9_500), 9_500);
        assert_eq!(h.count_at_or_below(TAIL_FLOOR_MICROS), TAIL_FLOOR_MICROS);
        assert_eq!(h.count_at_or_below(1_000_000), 10_000);
        // Below the floor: prorated within the straddled bucket — exact
        // here because the data is uniform.
        assert_eq!(h.count_at_or_below(4), 4);
        assert_eq!(h.count_at_or_below(1_000), 1_000);
        // Monotone in the threshold.
        let mut last = 0;
        for t in [1u64, 10, 100, 1_000, 8_000, 8_192, 9_000, 20_000] {
            let c = h.count_at_or_below(t);
            assert!(c >= last, "count_at_or_below not monotone at {t}");
            last = c;
        }
    }

    #[test]
    fn single_observation_answers_its_own_bucket_midpoint() {
        let h = LatencyHistogram::default();
        h.record(300); // bucket [256, 512)
        let p50 = h.quantile_micros(0.5);
        assert!((256..512).contains(&p50), "p50 = {p50}");
        // Midpoint, not upper edge.
        assert_eq!(p50, 256 + 128);
    }

    #[test]
    fn metrics_json_has_every_counter() {
        let m = Metrics::new();
        m.record_request();
        m.record_answer(Tier::Cache, Backend::Bnb, true, false, 12, 0);
        m.record_answer(Tier::Bnb, Backend::Sat, false, true, 90_000, 417);
        m.record_sat_effort(321, 77, 9001);
        let doc = m.to_json();
        assert_eq!(doc.get("requests").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("cache_hits").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("budget_exhausted").and_then(Json::as_i64), Some(1));
        let tiers = doc.get("tier_answers").unwrap();
        assert_eq!(tiers.get("cache").and_then(Json::as_i64), Some(1));
        assert_eq!(tiers.get("bnb").and_then(Json::as_i64), Some(1));
        let omega = doc.get("tier_omega").unwrap();
        assert_eq!(omega.get("bnb").and_then(Json::as_i64), Some(417));
        let backends = doc.get("backend_answers").unwrap();
        assert_eq!(backends.get("bnb").and_then(Json::as_i64), Some(1));
        assert_eq!(backends.get("sat").and_then(Json::as_i64), Some(1));
        let sat = doc.get("sat").unwrap();
        assert_eq!(sat.get("conflicts").and_then(Json::as_i64), Some(321));
        assert_eq!(sat.get("propagations").and_then(Json::as_i64), Some(9001));
        assert_eq!(
            doc.get("latency_micros")
                .and_then(|l| l.get("count"))
                .and_then(Json::as_i64),
            Some(2)
        );
        assert!(doc
            .get("latency_micros")
            .and_then(|l| l.get("p90"))
            .and_then(Json::as_i64)
            .is_some());
        let search = doc.get("search").unwrap();
        assert_eq!(
            search.get("identity_holds").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn aggregate_identity_holds_over_eligible_searches() {
        let agg = SearchAggregate::default();
        // Three completed single searches obeying the per-run identity.
        for (nodes, omega, pruned) in [(10, 12, 3), (1, 0, 0), (100, 120, 21)] {
            let stats = SearchStats {
                nodes_visited: nodes,
                omega_calls: omega,
                pruned_bound: pruned,
                ..SearchStats::default()
            };
            agg.record(&stats, true);
        }
        // A truncated run and a windowed (multi-root) aggregate: counted
        // raw, excluded from the identity.
        agg.record(
            &SearchStats {
                nodes_visited: 7,
                omega_calls: 99,
                truncated: true,
                ..SearchStats::default()
            },
            true,
        );
        agg.record(
            &SearchStats {
                nodes_visited: 55,
                omega_calls: 60,
                pruned_bound: 1,
                ..SearchStats::default()
            },
            false,
        );
        assert!(agg.identity_holds());
        assert_eq!(agg.searches.load(Ordering::Relaxed), 5);
        assert_eq!(agg.eligible_searches.load(Ordering::Relaxed), 3);
        assert_eq!(
            agg.nodes_visited.load(Ordering::Relaxed),
            10 + 1 + 100 + 7 + 55
        );
        // Violating the identity is detected.
        agg.record(
            &SearchStats {
                nodes_visited: 5,
                omega_calls: 5,
                pruned_bound: 5,
                ..SearchStats::default()
            },
            true,
        );
        assert!(!agg.identity_holds());
    }

    #[test]
    fn prometheus_exposition_is_parseable_and_complete() {
        let m = Metrics::new();
        m.record_request();
        m.record_answer(Tier::Bnb, Backend::Sat, false, false, 250, 31);
        m.record_sat_effort(5, 2, 40);
        m.record_parallel(3, 17);
        m.search.record(
            &SearchStats {
                nodes_visited: 32,
                omega_calls: 40,
                pruned_bound: 9,
                ..SearchStats::default()
            },
            true,
        );
        let mut w = PromWriter::new();
        m.write_prometheus(&mut w);
        let text = w.finish();
        pipesched_trace::prom::validate(&text).expect("exposition must parse");
        assert!(text.contains("pipesched_requests_total 1"));
        assert!(text.contains("pipesched_tier_answers_total{tier=\"bnb\"} 1"));
        assert!(text.contains("pipesched_tier_omega_total{tier=\"bnb\"} 31"));
        assert!(text.contains("pipesched_backend_answers_total{backend=\"sat\"} 1"));
        assert!(text.contains("pipesched_backend_answers_total{backend=\"bnb\"} 0"));
        assert!(text.contains("pipesched_sat_conflicts_total 5"));
        assert!(text.contains("pipesched_sat_propagations_total 40"));
        assert!(text.contains("pipesched_parallel_steals_total 3"));
        assert!(text.contains("pipesched_parallel_splits_total 17"));
        assert!(text.contains("pipesched_search_pruned_total{rule=\"bound\"} 9"));
        assert!(text.contains("pipesched_search_identity_ok 1"));
        assert!(text.contains("pipesched_request_latency_micros_count 1"));
    }
}
