//! Lock-cheap service counters.
//!
//! Every counter is a relaxed atomic — the request hot path never takes a
//! lock to record metrics. Latency lands in a fixed log₂-bucketed histogram
//! (1 µs … ~17 min), from which p50/p99 are estimated at dump time by
//! linear interpolation inside the winning bucket.

use std::sync::atomic::{AtomicU64, Ordering};

use pipesched_json::Json;

use crate::engine::Tier;

const BUCKETS: usize = 30; // bucket b covers [2^b, 2^(b+1)) microseconds

/// Log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, micros: u64) {
        let b = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) in microseconds, interpolated
    /// within the winning bucket. Returns 0 when empty.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if seen + c >= rank {
                let lo = 1u64 << b;
                let width = lo; // bucket spans [lo, 2*lo)
                let into = (rank - seen) as f64 / c.max(1) as f64;
                return lo + (width as f64 * into) as u64;
            }
            seen += c;
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Service-wide counters, dumped as JSON on demand or at shutdown.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received (including failed ones).
    pub requests: AtomicU64,
    /// Requests that failed to parse or schedule.
    pub errors: AtomicU64,
    /// Validated cache hits.
    pub cache_hits: AtomicU64,
    /// Cache lookups that missed (or failed hit validation).
    pub cache_misses: AtomicU64,
    /// Answers produced per tier (cache/list/windowed/bnb).
    pub tier_answers: [AtomicU64; 4],
    /// Requests whose search budget or deadline expired (answer was the
    /// incumbent, `optimal=false`).
    pub budget_exhausted: AtomicU64,
    /// Per-request wall-clock latency.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Count one received request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failed request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed answer: its tier, cache outcome, truncation, and
    /// latency.
    pub fn record_answer(&self, tier: Tier, cache_hit: bool, truncated: bool, micros: u64) {
        self.tier_answers[tier.index()].fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if truncated {
            self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(micros);
    }

    /// Dump every counter as a JSON object.
    pub fn to_json(&self) -> Json {
        let tier = |t: Tier| self.tier_answers[t.index()].load(Ordering::Relaxed);
        pipesched_json::json_object![
            ("requests", self.requests.load(Ordering::Relaxed) as i64),
            ("errors", self.errors.load(Ordering::Relaxed) as i64),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed) as i64),
            (
                "cache_misses",
                self.cache_misses.load(Ordering::Relaxed) as i64
            ),
            (
                "budget_exhausted",
                self.budget_exhausted.load(Ordering::Relaxed) as i64
            ),
            (
                "tier_answers",
                pipesched_json::json_object![
                    ("cache", tier(Tier::Cache) as i64),
                    ("list", tier(Tier::List) as i64),
                    ("windowed", tier(Tier::Windowed) as i64),
                    ("bnb", tier(Tier::Bnb) as i64),
                ]
            ),
            (
                "latency_micros",
                pipesched_json::json_object![
                    ("count", self.latency.count() as i64),
                    ("mean", self.latency.mean_micros() as i64),
                    ("p50", self.latency.quantile_micros(0.50) as i64),
                    ("p99", self.latency.quantile_micros(0.99) as i64),
                ]
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 30, 40, 1000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_micros(0.5);
        assert!((16..64).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!((512..2048).contains(&p99), "p99 = {p99}");
        assert_eq!(h.mean_micros(), (10 + 20 + 30 + 40 + 1000) / 5);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn metrics_json_has_every_counter() {
        let m = Metrics::new();
        m.record_request();
        m.record_answer(Tier::Cache, true, false, 12);
        m.record_answer(Tier::Bnb, false, true, 90_000);
        let doc = m.to_json();
        assert_eq!(doc.get("requests").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("cache_hits").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("budget_exhausted").and_then(Json::as_i64), Some(1));
        let tiers = doc.get("tier_answers").unwrap();
        assert_eq!(tiers.get("cache").and_then(Json::as_i64), Some(1));
        assert_eq!(tiers.get("bnb").and_then(Json::as_i64), Some(1));
        assert_eq!(
            doc.get("latency_micros")
                .and_then(|l| l.get("count"))
                .and_then(Json::as_i64),
            Some(2)
        );
    }
}
