//! NDJSON request/response envelope.
//!
//! One request per line, one response per line, pairable by `id`:
//!
//! ```json
//! {"id": 7, "block": "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2",
//!  "machine": "paper-simulation", "budget_nodes": 50000, "deadline_ms": 25}
//! ```
//!
//! `block` is either the textual tuple format (detected by a leading
//! `;; tuples` marker or a `<id>:` prefix) or expression source compiled by
//! the frontend. `machine` is a preset name or an inline machine-config
//! object. `budget_nodes` and `deadline_ms` are optional; omitting both
//! requests a provably optimal answer.
//!
//! ```json
//! {"id": 7, "ok": true, "nops": 2, "optimal": true, "cache_hit": false,
//!  "tier": "bnb", "backend": "bnb", "order": [1, 3, 2], "pipes": [0, 2, 1],
//!  "etas": [0, 0, 2], "omega_calls": 14, "deadline_hit": false, "micros": 312}
//! ```
//!
//! Failures come back on the same line protocol: `{"id": 7, "ok": false,
//! "error": "..."}` — a bad request never tears the connection down.

use std::time::{Duration, Instant};

use pipesched_ir::BasicBlock;
use pipesched_json::{json_object, Json};
use pipesched_machine::{config as machine_config, presets, Machine};

use crate::engine::{Answer, Budget};

/// A parsed scheduling request.
#[derive(Debug)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: Option<i64>,
    /// The block to schedule.
    pub block: BasicBlock,
    /// The target machine.
    pub machine: Machine,
    /// Ω-call budget (`None` ⇒ engine default / unlimited).
    pub budget_nodes: Option<u64>,
    /// Wall-clock allowance in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Materialize the per-request [`Budget`], anchoring the deadline at
    /// `now` (the moment the request is picked up, not parsed).
    pub fn budget(&self, default_nodes: u64, now: Instant) -> Budget {
        Budget {
            nodes: self.budget_nodes.unwrap_or(default_nodes),
            deadline: self.deadline_ms.map(|ms| now + Duration::from_millis(ms)),
        }
    }
}

/// Parse one NDJSON request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = pipesched_json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let id = doc.get("id").and_then(Json::as_i64);

    let block_text = doc
        .get("block")
        .and_then(Json::as_str)
        .ok_or("missing string field `block`")?;
    let block = parse_block_text("request", block_text)?;

    let machine = match doc.get("machine") {
        None => return Err("missing field `machine`".into()),
        Some(Json::Str(name)) => preset_machine(name)?,
        Some(obj @ Json::Object(_)) => {
            machine_config::from_json(&obj.to_compact()).map_err(|e| e.to_string())?
        }
        Some(_) => return Err("`machine` must be a preset name or an object".into()),
    };

    let budget_nodes = match doc.get("budget_nodes") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|&n| n >= 0)
                .ok_or("`budget_nodes` must be a non-negative integer")? as u64,
        ),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|&n| n >= 0)
                .ok_or("`deadline_ms` must be a non-negative integer")? as u64,
        ),
    };

    Ok(Request {
        id,
        block,
        machine,
        budget_nodes,
        deadline_ms,
    })
}

/// Parse request block text: tuple format when it looks like one,
/// otherwise expression source through the frontend (unoptimized, so the
/// request text maps 1:1 onto tuples).
fn parse_block_text(name: &str, text: &str) -> Result<BasicBlock, String> {
    let head = text.trim_start();
    if head.starts_with(";; tuples") || head.starts_with("1:") {
        pipesched_ir::parse::parse_block(name, text).map_err(|e| e.to_string())
    } else {
        pipesched_frontend::compile_unoptimized(name, text).map_err(|e| e.to_string())
    }
}

/// Resolve a preset machine by its CLI name.
pub fn preset_machine(name: &str) -> Result<Machine, String> {
    match name {
        "paper-simulation" => Ok(presets::paper_simulation()),
        "paper-table2" => Ok(presets::table2_example()),
        "deep-pipeline" => Ok(presets::deep_pipeline()),
        "functional-units" => Ok(presets::functional_units()),
        "section2-example" => Ok(presets::section2_example()),
        "unpipelined" => Ok(presets::unpipelined()),
        other => Err(format!("unknown machine preset `{other}`")),
    }
}

/// Render a success response line (without trailing newline). `trace_id`
/// is attached when the server recorded a trace for this request, so the
/// client can fetch the span dump via `GET /trace/<id>`.
pub fn response_json(id: Option<i64>, answer: &Answer, micros: u64, trace_id: Option<u64>) -> Json {
    let order: Vec<Json> = answer
        .order
        .iter()
        .map(|t| Json::Int(i64::from(t.0) + 1)) // 1-based, matching tuple text
        .collect();
    let pipes: Vec<Json> = answer
        .order
        .iter()
        .map(|t| match answer.assignment[t.index()] {
            Some(p) => Json::Int(p.index() as i64),
            None => Json::Null,
        })
        .collect();
    let etas: Vec<Json> = answer
        .etas
        .iter()
        .map(|&e| Json::Int(i64::from(e)))
        .collect();
    let mut doc = json_object![
        ("id", id.map_or(Json::Null, Json::Int)),
        ("ok", true),
        ("nops", i64::from(answer.nops)),
        ("optimal", answer.optimal),
        ("cache_hit", answer.cache_hit),
        ("tier", answer.tier.name()),
        ("backend", answer.backend.name()),
        ("order", Json::Array(order)),
        ("pipes", Json::Array(pipes)),
        ("etas", Json::Array(etas)),
        ("omega_calls", answer.omega_calls as i64),
        ("deadline_hit", answer.deadline_hit),
        ("micros", micros as i64),
    ];
    if let Some(digest) = answer.proof_digest {
        if let Json::Object(pairs) = &mut doc {
            pairs.push((
                "proof_digest".to_string(),
                Json::Str(format!("{digest:016x}")),
            ));
        }
    }
    if let Some(trace) = trace_id {
        if let Json::Object(pairs) = &mut doc {
            pairs.push(("trace_id".to_string(), Json::Int(trace as i64)));
        }
    }
    doc
}

/// Render an error response line.
pub fn error_json(id: Option<i64>, message: &str) -> Json {
    json_object![
        ("id", id.map_or(Json::Null, Json::Int)),
        ("ok", false),
        ("error", message),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tuple_block_and_preset() {
        let req = parse_request(
            r#"{"id": 3, "block": "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2",
                "machine": "paper-simulation", "budget_nodes": 100, "deadline_ms": 5}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.block.len(), 3);
        assert_eq!(req.machine.name, "paper-simulation");
        assert_eq!(req.budget_nodes, Some(100));
        let now = Instant::now();
        let budget = req.budget(999, now);
        assert_eq!(budget.nodes, 100);
        assert_eq!(budget.deadline, Some(now + Duration::from_millis(5)));
    }

    #[test]
    fn parses_source_block_and_inline_machine() {
        let machine_json = machine_config::to_json(&presets::paper_simulation()).unwrap();
        let line = json_object![
            ("block", "r = a * b + c;"),
            ("machine", pipesched_json::parse(&machine_json).unwrap()),
        ]
        .to_compact();
        let req = parse_request(&line).unwrap();
        assert!(req.block.len() >= 4);
        assert_eq!(req.id, None);
        assert_eq!(req.budget(777, Instant::now()).nodes, 777);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"machine": "paper-simulation"}"#).is_err());
        assert!(parse_request(r#"{"block": "1: Load #x"}"#).is_err());
        assert!(parse_request(r#"{"block": "1: Load #x", "machine": "no-such"}"#).is_err());
        assert!(parse_request(
            r#"{"block": "1: Load #x", "machine": "paper-simulation", "budget_nodes": -1}"#
        )
        .is_err());
    }

    #[test]
    fn error_json_round_trips() {
        let doc = error_json(Some(9), "boom");
        assert_eq!(doc.get("id").and_then(Json::as_i64), Some(9));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("boom"));
    }
}
