#![warn(missing_docs)]

//! `pipesched-serve`: a batched scheduling service over the pipesched
//! stack — canonical-DAG memoization plus deadline-bounded anytime search.
//!
//! Compilers re-schedule the same few dozen block *shapes* endlessly:
//! inlining, unrolling, and macro expansion stamp out isomorphic blocks
//! that differ only in variable names and tuple numbering. The NOP
//! minimization of §4.2 sees none of those differences, so this crate
//! answers repeat shapes from a cache instead of re-running the search:
//!
//! * [`canon`] reduces a block + machine to a canonical cache key by
//!   iterative label refinement over the dependence DAG (op kind, latency
//!   class, edge structure), with a permutation that replays a cached
//!   schedule onto any isomorphic block. Every hit is re-validated on the
//!   new block, so a hash collision costs a lookup, never a wrong answer.
//! * [`cache`] is a sharded in-memory LRU over canonical entries with
//!   optional JSON persistence, so a warmed cache survives restarts.
//! * [`engine`] escalates each miss through answer tiers — list schedule
//!   (free when the lower bound proves it), windowed search on a budget
//!   slice, then the final exact tier under a node budget and wall-clock
//!   deadline: the paper's branch-and-bound by default, the SAT
//!   portfolio's descending feasibility queries, or a race of the two
//!   ([`EngineConfig::backend`]); answers, cache entries, and metrics all
//!   record which backend produced the schedule. Budget exhaustion still
//!   returns a legal schedule, flagged `optimal: false`; unlimited
//!   budgets reproduce the serial B&B result bit for bit.
//! * [`request`]/[`serve`] speak an NDJSON line protocol over stdin or
//!   TCP through a blocking worker pool — the TCP port also answers HTTP
//!   `GET /metrics` (Prometheus text), `/stats` (JSON) and `/trace/<id>`
//!   (NDJSON span dumps); [`batch`] replays a request file and reports
//!   throughput plus fleet-wide search effort, and [`metrics`] keeps
//!   lock-cheap counters (per-tier answers, hit rates, latency quantiles,
//!   aggregated prune counters with the `1 + Ω − bound-pruned == nodes`
//!   identity re-checked on the fleet totals).
//!
//! The `pipesched serve` and `pipesched batch` CLI subcommands are thin
//! wrappers over this crate.

pub mod batch;
pub mod cache;
pub mod canon;
pub mod engine;
pub mod metrics;
pub mod request;
pub mod serve;
pub mod slo;

pub use batch::{run_batch, summarize_responses, BatchSummary};

/// Serializes tests that toggle the process-global trace/flight switches
/// or reset the flight recorder, so concurrent tests in this binary never
/// observe them mid-flip.
#[cfg(test)]
pub(crate) fn flight_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
pub use cache::{CacheEntry, ScheduleCache};
pub use canon::{canonicalize, machine_fingerprint, CanonForm, CanonKey};
pub use engine::{Answer, Budget, EngineConfig, ServiceEngine, Tier};
pub use metrics::{LatencyHistogram, Metrics, SearchAggregate};
pub use pipesched_core::Backend;
pub use request::{error_json, parse_request, response_json, Request};
pub use serve::{serve_stream, serve_tcp, ServeConfig};
