//! The serving front end: a blocking worker pool over NDJSON streams.
//!
//! [`serve_stream`] reads request lines from any `BufRead`, fans them out
//! to a fixed pool of worker threads sharing one [`ServiceEngine`], and
//! writes one response line per request **in input order** (workers finish
//! out of order; a reorder buffer holds completed lines until their turn).
//!
//! [`serve_tcp`] accepts NDJSON connections on a TCP listener and runs
//! `serve_stream` per connection, so `nc host port < requests.ndjson`
//! works as a remote batch interface.
//!
//! The vendored `crossbeam` shim has no channels and the `parking_lot`
//! shim no `Condvar`, so the job queue is a plain `std::sync` mutex +
//! condvar pair — adequate here because each job carries milliseconds of
//! scheduling work, not nanoseconds of queue traffic.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::engine::ServiceEngine;
use crate::request::{error_json, parse_request, response_json};

/// Front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads handling requests concurrently.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4 }
    }
}

enum Job {
    Line { seq: u64, line: String },
    Shutdown,
}

struct Queue {
    jobs: Mutex<Vec<Job>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new(Vec::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            // FIFO: jobs were pushed in input order, take from the front.
            if !jobs.is_empty() {
                return jobs.remove(0);
            }
            jobs = self.ready.wait(jobs).unwrap();
        }
    }
}

/// Reorder buffer: responses are written strictly in request order.
struct Reorder<W: Write> {
    out: W,
    next: u64,
    pending: BTreeMap<u64, String>,
}

impl<W: Write> Reorder<W> {
    fn emit(&mut self, seq: u64, line: String) -> std::io::Result<()> {
        self.pending.insert(seq, line);
        while let Some(line) = self.pending.remove(&self.next) {
            self.out.write_all(line.as_bytes())?;
            self.out.write_all(b"\n")?;
            self.out.flush()?;
            self.next += 1;
        }
        Ok(())
    }
}

/// Serve every NDJSON line of `input`, writing ordered responses to
/// `output`. Returns the number of requests handled (including failures).
pub fn serve_stream<R: BufRead, W: Write + Send>(
    engine: &ServiceEngine,
    input: R,
    output: W,
    config: &ServeConfig,
) -> std::io::Result<u64> {
    let workers = config.workers.max(1);
    let queue = Queue::new();
    let sink = Mutex::new(Reorder {
        out: output,
        next: 0,
        pending: BTreeMap::new(),
    });
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let mut handled = 0u64;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (seq, line) = match queue.pop() {
                    Job::Shutdown => return,
                    Job::Line { seq, line } => (seq, line),
                };
                let rendered = handle_line(engine, &line);
                let mut sink = sink.lock().unwrap();
                if let Err(e) = sink.emit(seq, rendered) {
                    io_error.lock().unwrap().get_or_insert(e);
                    return;
                }
            });
        }

        let mut seq = 0u64;
        for line in input.lines() {
            match line {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    queue.push(Job::Line { seq, line });
                    seq += 1;
                }
                Err(e) => {
                    io_error.lock().unwrap().get_or_insert(e);
                    break;
                }
            }
        }
        handled = seq;
        for _ in 0..workers {
            queue.push(Job::Shutdown);
        }
    });

    match io_error.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(handled),
    }
}

/// Answer one request line, returning the rendered response line.
fn handle_line(engine: &ServiceEngine, line: &str) -> String {
    engine.metrics().record_request();
    let start = Instant::now();
    match parse_request(line) {
        Ok(req) => {
            let budget = req.budget(engine.config().default_nodes, start);
            let answer = engine.answer(&req.block, &req.machine, budget);
            response_json(req.id, &answer, start.elapsed().as_micros() as u64).to_compact()
        }
        Err(message) => {
            engine.metrics().record_error();
            // Salvage the id for correlation even when the rest is bad.
            let id = pipesched_json::parse(line)
                .ok()
                .and_then(|d| d.get("id").and_then(pipesched_json::Json::as_i64));
            error_json(id, &message).to_compact()
        }
    }
}

/// Accept NDJSON connections on `listener`; each connection is served by
/// its own `serve_stream` over the shared engine. Stops after
/// `max_conns` connections when given (used by tests), otherwise loops
/// until the listener errors.
pub fn serve_tcp(
    engine: &ServiceEngine,
    listener: TcpListener,
    config: &ServeConfig,
    max_conns: Option<u64>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    for conn in listener.incoming() {
        let stream = conn?;
        let reader = BufReader::new(stream.try_clone()?);
        // Connections are handled sequentially; within one connection the
        // worker pool still answers requests concurrently.
        serve_stream(engine, reader, stream, config)?;
        served += 1;
        if max_conns.is_some_and(|m| served >= m) {
            break;
        }
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pipesched_json::Json;

    fn engine() -> ServiceEngine {
        ServiceEngine::new(EngineConfig::default(), 64, 4)
    }

    const REQ: &str = r#"{"id": 1, "block": "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2", "machine": "paper-simulation"}"#;

    #[test]
    fn serves_a_stream_in_input_order() {
        let eng = engine();
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&REQ.replace(r#""id": 1"#, &format!(r#""id": {i}"#)));
            input.push('\n');
        }
        let mut out = Vec::new();
        let handled = serve_stream(
            &eng,
            input.as_bytes(),
            &mut out,
            &ServeConfig { workers: 3 },
        )
        .unwrap();
        assert_eq!(handled, 8);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let doc = pipesched_json::parse(line).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_i64), Some(i as i64));
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        }
        // 8 identical shapes → 1 miss, 7 validated hits.
        assert_eq!(eng.cache().hits(), 7);
        assert_eq!(
            eng.metrics()
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            8
        );
    }

    #[test]
    fn bad_lines_get_error_responses_not_disconnects() {
        let eng = engine();
        let input = format!("{REQ}\nnot json at all\n{{\"id\": 5, \"block\": \"1: Load #x\"}}\n");
        let mut out = Vec::new();
        let handled =
            serve_stream(&eng, input.as_bytes(), &mut out, &ServeConfig::default()).unwrap();
        assert_eq!(handled, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3);
        let second = pipesched_json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok").and_then(Json::as_bool), Some(false));
        let third = pipesched_json::parse(lines[2]).unwrap();
        assert_eq!(third.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(third.get("id").and_then(Json::as_i64), Some(5));
        assert_eq!(
            eng.metrics()
                .errors
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn tcp_round_trip() {
        let eng = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let eng = &eng;
            let server = scope.spawn(move || {
                serve_tcp(eng, listener, &ServeConfig { workers: 2 }, Some(1)).unwrap()
            });
            let client = scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream.write_all(REQ.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut reply = String::new();
                BufReader::new(stream).read_line(&mut reply).unwrap();
                reply
            });
            let reply = client.join().unwrap();
            assert_eq!(server.join().unwrap(), 1);
            let doc = pipesched_json::parse(&reply).unwrap();
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(
                doc.get("nops").and_then(Json::as_i64).map(|n| n >= 0),
                Some(true)
            );
        });
    }
}
