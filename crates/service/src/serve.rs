//! The serving front end: a blocking worker pool over NDJSON streams.
//!
//! [`serve_stream`] reads request lines from any `BufRead`, fans them out
//! to a fixed pool of worker threads sharing one [`ServiceEngine`], and
//! writes one response line per request **in input order** (workers finish
//! out of order; a reorder buffer holds completed lines until their turn).
//!
//! [`serve_tcp`] accepts connections on a TCP listener and sniffs the
//! first line: `GET ...` connections are answered as one-shot HTTP
//! (`/metrics` Prometheus text, `/stats` JSON, `/trace/<id>` NDJSON span
//! dumps), anything else runs `serve_stream` over the connection, so
//! `nc host port < requests.ndjson` works as a remote batch interface and
//! `curl` can scrape the same port. A connection that closes without
//! sending a byte is treated as a liveness probe and not counted.
//!
//! When tracing is enabled ([`pipesched_trace::set_enabled`]), every
//! request records a span tree through parse → cache → tier escalation
//! and the response carries its `trace_id`.
//!
//! The vendored `crossbeam` shim has no channels, so the job queue is a
//! mutex + condvar pair from the `pipesched_check::sync` facade —
//! adequate here because each job carries milliseconds of scheduling
//! work, not nanoseconds of queue traffic. Routing through the facade
//! means a `--cfg model` build turns every queue operation into a
//! scheduling point of the deterministic model checker, so the
//! push/pop/shutdown protocol is explorable like the pool's.

use pipesched_check::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::TcpListener;
use std::time::Instant;

use pipesched_trace::flight;

use crate::engine::ServiceEngine;
use crate::request::{error_json, parse_request, response_json};

/// Front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads handling requests concurrently.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4 }
    }
}

enum Job {
    Line { seq: u64, line: String },
    Shutdown,
}

struct Queue {
    jobs: Mutex<Vec<Job>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new(Vec::new()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().push(job);
        self.ready.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock();
        loop {
            // FIFO: jobs were pushed in input order, take from the front.
            if !jobs.is_empty() {
                return jobs.remove(0);
            }
            jobs = self.ready.wait(jobs);
        }
    }
}

/// Reorder buffer: responses are written strictly in request order.
struct Reorder<W: Write> {
    out: W,
    next: u64,
    pending: BTreeMap<u64, String>,
}

impl<W: Write> Reorder<W> {
    fn emit(&mut self, seq: u64, line: String) -> std::io::Result<()> {
        self.pending.insert(seq, line);
        while let Some(line) = self.pending.remove(&self.next) {
            self.out.write_all(line.as_bytes())?;
            self.out.write_all(b"\n")?;
            self.out.flush()?;
            self.next += 1;
        }
        Ok(())
    }
}

/// Serve every NDJSON line of `input`, writing ordered responses to
/// `output`. Returns the number of requests handled (including failures).
pub fn serve_stream<R: BufRead, W: Write + Send>(
    engine: &ServiceEngine,
    input: R,
    output: W,
    config: &ServeConfig,
) -> std::io::Result<u64> {
    let workers = config.workers.max(1);
    let queue = Queue::new();
    let sink = Mutex::new(Reorder {
        out: output,
        next: 0,
        pending: BTreeMap::new(),
    });
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let mut handled = 0u64;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (seq, line) = match queue.pop() {
                    Job::Shutdown => return,
                    Job::Line { seq, line } => (seq, line),
                };
                let rendered = handle_line(engine, &line);
                let mut sink = sink.lock();
                if let Err(e) = sink.emit(seq, rendered) {
                    io_error.lock().get_or_insert(e);
                    return;
                }
            });
        }

        let mut seq = 0u64;
        for line in input.lines() {
            match line {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    queue.push(Job::Line { seq, line });
                    seq += 1;
                }
                Err(e) => {
                    io_error.lock().get_or_insert(e);
                    break;
                }
            }
        }
        handled = seq;
        for _ in 0..workers {
            queue.push(Job::Shutdown);
        }
    });

    match io_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(handled),
    }
}

/// Answer one request line, returning the rendered response line. When
/// tracing is on, the whole request records one trace (published to the
/// in-process store, fetchable via `GET /trace/<id>`) and the response
/// carries its id.
pub(crate) fn handle_line(engine: &ServiceEngine, line: &str) -> String {
    engine.metrics().record_request();
    let trace_id = if pipesched_trace::enabled() {
        let id = pipesched_trace::begin("request");
        (id != 0).then_some(id)
    } else {
        None
    };
    flight::begin(-1);
    let start = Instant::now();
    let mut fclock = flight::clock();
    let parsed = {
        let _s = pipesched_trace::span("parse");
        parse_request(line)
    };
    fclock.lap(flight::Phase::Parse);
    let rendered = match parsed {
        Ok(req) => 'ok: {
            flight::note_req(req.id.unwrap_or(-1));
            // Optimizer admission gate: run the front-end optimizer under
            // translation validation and refuse blocks whose transcript
            // the validator rejects. The gate never substitutes the
            // optimized block — the response's order/pipes/etas must
            // index the tuples the client sent.
            let verified = if engine.config().verify_opt {
                let _s = pipesched_trace::span("verify_opt");
                match pipesched_analyze::optimize_verified(
                    &req.block,
                    &pipesched_frontend::OptConfig::default(),
                ) {
                    Ok(_) => {
                        engine.metrics().record_opt_verified();
                        true
                    }
                    Err(rej) => {
                        engine.metrics().record_opt_rejected();
                        engine.metrics().record_error();
                        flight::note_outcome(flight::Outcome::AdmissionReject);
                        let codes: Vec<&str> = rej.codes().iter().map(|c| c.as_str()).collect();
                        break 'ok error_json(
                            req.id,
                            &format!(
                                "optimizer translation validation rejected the block [{}]",
                                codes.join(", ")
                            ),
                        )
                        .to_compact();
                    }
                }
            } else {
                false
            };
            let budget = req.budget(engine.config().default_nodes, start);
            let answer = engine.answer(&req.block, &req.machine, budget);
            if !answer.optimal && !answer.deadline_hit {
                flight::note_outcome(flight::Outcome::BudgetExhausted);
            }
            let _s = pipesched_trace::span("respond");
            // The engine's own phase clock covered dag→search; a fresh
            // clock attributes only the rendering below to `respond`.
            let mut rclock = flight::clock();
            let mut doc = response_json(
                req.id,
                &answer,
                start.elapsed().as_micros() as u64,
                trace_id,
            );
            if verified {
                if let pipesched_json::Json::Object(pairs) = &mut doc {
                    pairs.push(("opt_verified".to_string(), pipesched_json::Json::Bool(true)));
                }
            }
            let rendered = doc.to_compact();
            rclock.lap(flight::Phase::Respond);
            rendered
        }
        Err(message) => {
            engine.metrics().record_error();
            flight::note_outcome(flight::Outcome::Error);
            // Salvage the id for correlation even when the rest is bad.
            let id = pipesched_json::parse(line)
                .ok()
                .and_then(|d| d.get("id").and_then(pipesched_json::Json::as_i64));
            if let Some(id) = id {
                flight::note_req(id);
            }
            error_json(id, &message).to_compact()
        }
    };
    if trace_id.is_some() {
        pipesched_trace::end();
    }
    flight::commit(start.elapsed().as_micros() as u64, trace_id.unwrap_or(0));
    rendered
}

/// Accept connections on `listener`; the first line decides the protocol.
/// `GET` lines get one-shot HTTP (`/metrics`, `/stats`, `/trace/<id>`),
/// everything else is an NDJSON stream served by `serve_stream` over the
/// shared engine. Stops after `max_conns` counted connections when given
/// (used by tests), otherwise loops until the listener errors. Empty
/// connections (port probes) are served as a no-op and **not** counted.
pub fn serve_tcp(
    engine: &ServiceEngine,
    listener: TcpListener,
    config: &ServeConfig,
    max_conns: Option<u64>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    for conn in listener.incoming() {
        let stream = conn?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut first = String::new();
        if reader.read_line(&mut first)? == 0 {
            // Liveness probe: the peer connected and closed without
            // sending anything. Not a served connection.
            continue;
        }
        if first.starts_with("GET ") {
            handle_http(engine, &mut reader, stream, &first, config.workers.max(1))?;
        } else {
            // Connections are handled sequentially; within one connection
            // the worker pool still answers requests concurrently. The
            // sniffed first line is replayed ahead of the rest.
            let input = Cursor::new(first.into_bytes()).chain(reader);
            serve_stream(engine, input, stream, config)?;
        }
        served += 1;
        if max_conns.is_some_and(|m| served >= m) {
            break;
        }
    }
    Ok(served)
}

/// Answer one HTTP GET on a sniffed connection and close it.
fn handle_http<R: BufRead, W: Write>(
    engine: &ServiceEngine,
    reader: &mut R,
    mut out: W,
    request_line: &str,
    workers: usize,
) -> std::io::Result<()> {
    // Drain the request headers; a GET carries no body worth reading.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = route_http(engine, path, workers);
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// The observability routes exposed on the serving port. `workers` is the
/// front end's worker-pool size, reported by `/healthz`.
fn route_http(
    engine: &ServiceEngine,
    path: &str,
    workers: usize,
) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", engine.prometheus()),
        "/stats" => (
            "200 OK",
            "application/json",
            engine.stats_json().to_pretty() + "\n",
        ),
        "/slo" => (
            "200 OK",
            "application/json",
            crate::slo::to_json(engine.metrics()).to_pretty() + "\n",
        ),
        "/healthz" => {
            let (ok, doc) = engine.health_json(workers);
            (
                if ok {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                },
                "application/json",
                doc.to_pretty() + "\n",
            )
        }
        "/flight" => (
            "200 OK",
            "application/x-ndjson",
            flight::to_ndjson(&flight::recent(flight::DUMP_WINDOW)),
        ),
        "/flight/dumps" => {
            let dumps = flight::dumps();
            let body: String = dumps.iter().map(flight::Dump::to_ndjson).collect();
            ("200 OK", "application/x-ndjson", body)
        }
        _ => {
            if let Some(n) = path
                .strip_prefix("/flight/")
                .and_then(|n| n.parse::<usize>().ok())
            {
                return (
                    "200 OK",
                    "application/x-ndjson",
                    flight::to_ndjson(&flight::recent(n)),
                );
            }
            match path
                .strip_prefix("/trace/")
                .and_then(|id| id.parse::<u64>().ok())
                .and_then(pipesched_trace::store::get)
            {
                Some(trace) => (
                    "200 OK",
                    "application/x-ndjson",
                    pipesched_trace::render::to_ndjson(&trace),
                ),
                None => (
                    "404 Not Found",
                    "text/plain",
                    "unknown path; try /metrics, /stats, /slo, /healthz, /flight[/<n>|/dumps], or /trace/<id>\n"
                        .to_string(),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pipesched_json::Json;

    fn engine() -> ServiceEngine {
        ServiceEngine::new(EngineConfig::default(), 64, 4)
    }

    const REQ: &str = r#"{"id": 1, "block": "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2", "machine": "paper-simulation"}"#;

    #[test]
    fn serves_a_stream_in_input_order() {
        let eng = engine();
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&REQ.replace(r#""id": 1"#, &format!(r#""id": {i}"#)));
            input.push('\n');
        }
        let mut out = Vec::new();
        let handled = serve_stream(
            &eng,
            input.as_bytes(),
            &mut out,
            &ServeConfig { workers: 3 },
        )
        .unwrap();
        assert_eq!(handled, 8);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let doc = pipesched_json::parse(line).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_i64), Some(i as i64));
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        }
        // 8 identical shapes → 1 miss, 7 validated hits.
        assert_eq!(eng.cache().hits(), 7);
        assert_eq!(
            eng.metrics()
                .requests
                .load(std::sync::atomic::Ordering::Relaxed),
            8
        );
    }

    #[test]
    fn bad_lines_get_error_responses_not_disconnects() {
        let eng = engine();
        let input = format!("{REQ}\nnot json at all\n{{\"id\": 5, \"block\": \"1: Load #x\"}}\n");
        let mut out = Vec::new();
        let handled =
            serve_stream(&eng, input.as_bytes(), &mut out, &ServeConfig::default()).unwrap();
        assert_eq!(handled, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3);
        let second = pipesched_json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok").and_then(Json::as_bool), Some(false));
        let third = pipesched_json::parse(lines[2]).unwrap();
        assert_eq!(third.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(third.get("id").and_then(Json::as_i64), Some(5));
        assert_eq!(
            eng.metrics()
                .errors
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        text
    }

    #[test]
    fn http_endpoints_share_the_serving_port() {
        let eng = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let eng = &eng;
            let server = scope.spawn(move || {
                serve_tcp(eng, listener, &ServeConfig { workers: 2 }, Some(3)).unwrap()
            });
            // A probe (connect + close, no bytes) must not count.
            drop(std::net::TcpStream::connect(addr).unwrap());
            // Counted connection 1: one NDJSON request.
            {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream.write_all(REQ.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut reply = String::new();
                BufReader::new(stream).read_line(&mut reply).unwrap();
                let doc = pipesched_json::parse(&reply).unwrap();
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            }
            // Counted connections 2 and 3: HTTP scrapes of the same port.
            let metrics = http_get(addr, "/metrics");
            let stats = http_get(addr, "/stats");
            assert_eq!(server.join().unwrap(), 3);

            assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
            let body = metrics.split("\r\n\r\n").nth(1).unwrap();
            pipesched_trace::prom::validate(body).expect("exposition must parse");
            assert!(body.contains("pipesched_requests_total 1"), "{body}");
            assert!(body.contains("pipesched_cache_entries 1"), "{body}");

            let body = stats.split("\r\n\r\n").nth(1).unwrap();
            let doc = pipesched_json::parse(body).unwrap();
            assert_eq!(
                doc.get("metrics")
                    .and_then(|m| m.get("requests"))
                    .and_then(Json::as_i64),
                Some(1)
            );
            assert_eq!(
                doc.get("cache")
                    .and_then(|c| c.get("entries"))
                    .and_then(Json::as_i64),
                Some(1)
            );
        });
    }

    #[test]
    fn verify_opt_gate_accepts_and_marks_responses() {
        let eng = ServiceEngine::new(
            EngineConfig {
                verify_opt: true,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let reply = handle_line(&eng, REQ);
        let doc = pipesched_json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("opt_verified").and_then(Json::as_bool), Some(true));
        assert_eq!(
            eng.metrics()
                .opt_verified
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            eng.metrics()
                .opt_rejected
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
        // The gate never rewrites the scheduled block: the order still
        // indexes the three tuples the client sent.
        let order = doc.get("order").unwrap();
        if let Json::Array(items) = order {
            assert_eq!(items.len(), 3);
        } else {
            panic!("order must be an array");
        }
    }

    #[test]
    fn verify_opt_off_leaves_responses_unmarked() {
        let eng = engine();
        if eng.config().verify_opt {
            // PIPESCHED_VERIFY_OPT forced the default on; nothing to test.
            return;
        }
        let reply = handle_line(&eng, REQ);
        let doc = pipesched_json::parse(&reply).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert!(doc.get("opt_verified").is_none());
    }

    #[test]
    fn unknown_http_path_is_a_404_not_a_crash() {
        let eng = engine();
        let (status, _, body) = route_http(&eng, "/nope", 2);
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("/metrics"));
        let (status, _, _) = route_http(&eng, "/trace/notanumber", 2);
        assert_eq!(status, "404 Not Found");
        let (status, _, _) = route_http(&eng, "/trace/999999999", 2);
        assert_eq!(status, "404 Not Found");
    }

    #[test]
    fn traced_requests_expose_span_dumps() {
        let _toggle = crate::flight_test_lock();
        let eng = engine();
        pipesched_trace::set_enabled(true);
        let rendered = handle_line(&eng, REQ);
        pipesched_trace::set_enabled(false);
        let doc = pipesched_json::parse(&rendered).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let trace_id = doc
            .get("trace_id")
            .and_then(Json::as_i64)
            .expect("traced response carries its trace id") as u64;
        let trace = pipesched_trace::store::get(trace_id).expect("trace was published");
        for name in ["parse", "dag_build", "canonicalize", "cache_lookup"] {
            assert!(
                trace.events.iter().any(|e| e.name == name),
                "span `{name}` missing from the request trace"
            );
        }
        // The span dump is served over HTTP.
        let (status, ct, body) = route_http(&eng, &format!("/trace/{trace_id}"), 2);
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/x-ndjson");
        assert!(body.lines().count() > 4, "{body}");
        for line in body.lines() {
            pipesched_json::parse(line).expect("every dump line is JSON");
        }
    }

    #[test]
    fn healthz_and_slo_routes_respond() {
        let eng = engine();
        let (status, ct, body) = route_http(&eng, "/healthz", 2);
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/json");
        let doc = pipesched_json::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("workers").and_then(Json::as_i64), Some(2));
        assert_eq!(
            doc.get("schedule_selftest_ok").and_then(Json::as_bool),
            Some(true)
        );
        // A pool with no workers is not ready to serve.
        let (status, _, body) = route_http(&eng, "/healthz", 0);
        assert_eq!(status, "503 Service Unavailable");
        let doc = pipesched_json::parse(&body).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("unready"));

        handle_line(&eng, REQ);
        let (status, ct, body) = route_http(&eng, "/slo", 2);
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/json");
        let doc = pipesched_json::parse(&body).unwrap();
        let objectives = match doc.get("objectives") {
            Some(Json::Array(rows)) => rows.len(),
            other => panic!("objectives must be an array, got {other:?}"),
        };
        assert_eq!(objectives, crate::slo::objectives().len());
    }

    #[test]
    fn induced_deadline_miss_freezes_a_flight_dump() {
        let _toggle = crate::flight_test_lock();
        let eng = engine();
        pipesched_trace::set_enabled(true);
        flight::set_enabled(true);
        flight::reset();
        // Five independent load/mul/store chains fight over the pipelines,
        // so the list bound cannot prove optimality and the engine must
        // search — against a deadline that expired before it started.
        let lines: Vec<String> = (0..5)
            .flat_map(|i| {
                let b = 3 * i;
                [
                    format!("{}: Load #x{i}", b + 1),
                    format!("{}: Mul @{}, @{}", b + 2, b + 1, b + 1),
                    format!("{}: Store #y{i}, @{}", b + 3, b + 2),
                ]
            })
            .collect();
        let req = format!(
            r#"{{"id": 4242, "block": "{}", "machine": "paper-simulation", "deadline_ms": 0}}"#,
            lines.join(r"\n")
        );
        let rendered = handle_line(&eng, &req);
        pipesched_trace::set_enabled(false);
        flight::set_enabled(false);

        let doc = pipesched_json::parse(&rendered).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("deadline_hit").and_then(Json::as_bool), Some(true));

        // The miss froze a dump whose trigger is the offending request's
        // wide event, carrying the span-trace id for cross-reference.
        let dumps = flight::dumps();
        let dump = dumps
            .iter()
            .find(|d| d.anomaly == flight::Anomaly::DeadlineMiss.name())
            .expect("deadline miss must freeze a flight dump");
        let trigger = dump.events.last().expect("dump captures a window");
        assert_eq!(trigger.seq, dump.trigger_seq);
        assert_eq!(trigger.req, 4242);
        assert_eq!(trigger.outcome, flight::Outcome::DeadlineMiss.name());
        assert!(trigger.trace_id != 0, "wide event links to its span trace");
        assert!(trigger.micros > 0);
        assert!(trigger.verify(), "dumped events carry valid seals");

        // Both HTTP views surface the same event.
        let (status, ct, body) = route_http(&eng, "/flight/8", 2);
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/x-ndjson");
        assert!(body.contains("\"req\":4242"), "{body}");
        let (status, _, body) = route_http(&eng, "/flight/dumps", 2);
        assert_eq!(status, "200 OK");
        assert!(body.contains("\"anomaly\":\"deadline_miss\""), "{body}");
        assert!(body.contains("\"req\":4242"), "{body}");
        for line in body.lines() {
            pipesched_json::parse(line).expect("every dump line is JSON");
        }
    }

    #[test]
    fn tcp_round_trip() {
        let eng = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let eng = &eng;
            let server = scope.spawn(move || {
                serve_tcp(eng, listener, &ServeConfig { workers: 2 }, Some(1)).unwrap()
            });
            let client = scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream.write_all(REQ.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut reply = String::new();
                BufReader::new(stream).read_line(&mut reply).unwrap();
                reply
            });
            let reply = client.join().unwrap();
            assert_eq!(server.join().unwrap(), 1);
            let doc = pipesched_json::parse(&reply).unwrap();
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(
                doc.get("nops").and_then(Json::as_i64).map(|n| n >= 0),
                Some(true)
            );
        });
    }
}
