//! Latency SLOs and error-budget burn rates.
//!
//! Each [`Objective`] states "`target_fraction` of requests in `scope`
//! answer within `target_micros`". The error budget is the allowed bad
//! fraction, `1 − target_fraction`; the **burn rate** is how fast the
//! service spends it:
//!
//! ```text
//! burn = bad_fraction / (1 − target_fraction)
//! ```
//!
//! Burn 1.0 means the budget is being consumed exactly as provisioned;
//! above 1.0 the objective is being violated. Good counts come from
//! [`LatencyHistogram::count_at_or_below`], which is *exact* above the
//! sparse-tail floor — precisely where objectives sit — so burn rates are
//! not quantized by the log₂ buckets.
//!
//! Reports surface through `GET /slo`, the `slo` section of
//! `pipesched stats --json`, and `pipesched_slo_*` Prometheus gauges.

use pipesched_json::{json_object, Json};
use pipesched_trace::prom::PromWriter;

use crate::engine::Tier;
use crate::metrics::{LatencyHistogram, Metrics};

/// What slice of traffic an objective covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every request.
    Total,
    /// Requests answered by one escalation tier.
    Tier(Tier),
    /// Requests answered by one concrete backend (0 = bnb, 1 = sat).
    Backend(usize),
}

impl Scope {
    fn histogram<'m>(&self, metrics: &'m Metrics) -> &'m LatencyHistogram {
        match *self {
            Scope::Total => &metrics.latency,
            Scope::Tier(t) => &metrics.tier_latency[t.index()],
            Scope::Backend(b) => &metrics.backend_latency[b.min(1)],
        }
    }
}

/// One latency objective: `target_fraction` of `scope` within
/// `target_micros`.
#[derive(Debug, Clone, Copy)]
pub struct Objective {
    /// Stable identifier (the `slo` label in Prometheus).
    pub name: &'static str,
    /// Traffic slice.
    pub scope: Scope,
    /// Latency threshold, microseconds.
    pub target_micros: u64,
    /// Fraction of requests that must meet the threshold (0 < f < 1).
    pub target_fraction: f64,
}

/// The service's default objectives. Thresholds follow the tier
/// escalation's cost structure: cache answers are memory lookups, list
/// answers one heuristic pass, windowed answers bounded sub-searches, and
/// exact answers get an order of magnitude more headroom per tier.
pub fn objectives() -> &'static [Objective] {
    const OBJECTIVES: [Objective; 8] = [
        Objective {
            name: "total_p99_10ms",
            scope: Scope::Total,
            target_micros: 10_000,
            target_fraction: 0.99,
        },
        Objective {
            name: "total_p999_100ms",
            scope: Scope::Total,
            target_micros: 100_000,
            target_fraction: 0.999,
        },
        Objective {
            name: "cache_p99_1ms",
            scope: Scope::Tier(Tier::Cache),
            target_micros: 1_000,
            target_fraction: 0.99,
        },
        Objective {
            name: "list_p99_5ms",
            scope: Scope::Tier(Tier::List),
            target_micros: 5_000,
            target_fraction: 0.99,
        },
        Objective {
            name: "windowed_p99_50ms",
            scope: Scope::Tier(Tier::Windowed),
            target_micros: 50_000,
            target_fraction: 0.99,
        },
        Objective {
            name: "bnb_p95_500ms",
            scope: Scope::Tier(Tier::Bnb),
            target_micros: 500_000,
            target_fraction: 0.95,
        },
        Objective {
            name: "backend_bnb_p99_200ms",
            scope: Scope::Backend(0),
            target_micros: 200_000,
            target_fraction: 0.99,
        },
        Objective {
            name: "backend_sat_p95_500ms",
            scope: Scope::Backend(1),
            target_micros: 500_000,
            target_fraction: 0.95,
        },
    ];
    &OBJECTIVES
}

/// One objective evaluated against live metrics.
#[derive(Debug, Clone, Copy)]
pub struct Status {
    /// The objective.
    pub objective: Objective,
    /// Requests in scope.
    pub count: u64,
    /// Requests that met the threshold.
    pub good: u64,
    /// Error-budget burn rate (0 when no traffic).
    pub burn_rate: f64,
    /// Whether the budget is burning at or under provision (≤ 1.0).
    pub ok: bool,
}

/// Evaluate one objective.
pub fn evaluate(objective: Objective, metrics: &Metrics) -> Status {
    let hist = objective.scope.histogram(metrics);
    let count = hist.count();
    let good = hist.count_at_or_below(objective.target_micros).min(count);
    let burn_rate = if count == 0 {
        0.0
    } else {
        let bad_fraction = (count - good) as f64 / count as f64;
        bad_fraction / (1.0 - objective.target_fraction)
    };
    Status {
        objective,
        count,
        good,
        burn_rate,
        ok: burn_rate <= 1.0,
    }
}

/// Evaluate every default objective.
pub fn report(metrics: &Metrics) -> Vec<Status> {
    objectives().iter().map(|&o| evaluate(o, metrics)).collect()
}

fn scope_json(scope: Scope) -> Json {
    match scope {
        Scope::Total => json_object![("kind", "total")],
        Scope::Tier(t) => json_object![("kind", "tier"), ("tier", t.name())],
        Scope::Backend(b) => json_object![
            ("kind", "backend"),
            ("backend", if b == 1 { "sat" } else { "bnb" }),
        ],
    }
}

/// The `/slo` payload: every objective with its live burn rate.
pub fn to_json(metrics: &Metrics) -> Json {
    let statuses = report(metrics);
    let violations = statuses.iter().filter(|s| !s.ok).count();
    let rows: Vec<Json> = statuses
        .iter()
        .map(|s| {
            json_object![
                ("name", s.objective.name),
                ("scope", scope_json(s.objective.scope)),
                ("target_micros", s.objective.target_micros as i64),
                ("target_fraction", s.objective.target_fraction),
                ("count", s.count as i64),
                ("good", s.good as i64),
                ("bad", (s.count - s.good) as i64),
                ("burn_rate", s.burn_rate),
                ("ok", s.ok),
            ]
        })
        .collect();
    json_object![
        ("violations", violations as i64),
        ("objectives", Json::Array(rows)),
    ]
}

/// Append `pipesched_slo_*` gauges to a Prometheus exposition.
pub fn write_prometheus(metrics: &Metrics, w: &mut PromWriter) {
    let statuses = report(metrics);
    w.header(
        "pipesched_slo_burn_rate",
        "Error-budget burn rate per latency objective (1.0 = provisioned).",
        "gauge",
    );
    for s in &statuses {
        w.sample_labeled(
            "pipesched_slo_burn_rate",
            &[("slo", s.objective.name)],
            s.burn_rate,
        );
    }
    w.header(
        "pipesched_slo_ok",
        "1 when the objective's budget burns at or under provision.",
        "gauge",
    );
    for s in &statuses {
        w.sample_labeled(
            "pipesched_slo_ok",
            &[("slo", s.objective.name)],
            if s.ok { 1.0 } else { 0.0 },
        );
    }
    w.gauge(
        "pipesched_slo_violations",
        "Objectives currently burning error budget above provision.",
        statuses.iter().filter(|s| !s.ok).count() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_core::Backend;

    #[test]
    fn empty_metrics_burn_nothing() {
        let m = Metrics::new();
        for s in report(&m) {
            assert_eq!(s.count, 0);
            assert_eq!(s.burn_rate, 0.0);
            assert!(s.ok);
        }
        let doc = to_json(&m);
        assert_eq!(doc.get("violations").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn burn_rate_matches_the_budget_arithmetic() {
        let m = Metrics::new();
        // 100 cache answers: 98 fast, 2 over the 1 ms cache objective.
        for _ in 0..98 {
            m.record_answer(Tier::Cache, Backend::Bnb, true, false, 100, 0);
        }
        for _ in 0..2 {
            m.record_answer(Tier::Cache, Backend::Bnb, true, false, 9_000, 0);
        }
        let s = report(&m)
            .into_iter()
            .find(|s| s.objective.name == "cache_p99_1ms")
            .unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.good, 98);
        // bad_fraction 0.02 against a 0.01 budget: burning at 2×.
        assert!((s.burn_rate - 2.0).abs() < 1e-9, "burn = {}", s.burn_rate);
        assert!(!s.ok);
        let doc = to_json(&m);
        assert_eq!(doc.get("violations").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn scopes_only_see_their_own_traffic() {
        let m = Metrics::new();
        // A slow exact answer must not burn the cache tier's budget.
        m.record_answer(Tier::Bnb, Backend::Sat, false, false, 400_000, 10);
        let by_name = |n: &str| {
            report(&m)
                .into_iter()
                .find(|s| s.objective.name == n)
                .unwrap()
        };
        assert_eq!(by_name("cache_p99_1ms").count, 0);
        assert_eq!(by_name("bnb_p95_500ms").count, 1);
        assert!(by_name("bnb_p95_500ms").ok);
        assert_eq!(by_name("backend_sat_p95_500ms").count, 1);
        assert_eq!(by_name("backend_bnb_p99_200ms").count, 0);
    }

    #[test]
    fn prometheus_gauges_parse_and_cover_every_objective() {
        let m = Metrics::new();
        m.record_answer(Tier::List, Backend::Bnb, false, false, 800, 3);
        let mut w = PromWriter::new();
        write_prometheus(&m, &mut w);
        let text = w.finish();
        pipesched_trace::prom::validate(&text).expect("exposition must parse");
        for o in objectives() {
            assert!(
                text.contains(&format!("pipesched_slo_burn_rate{{slo=\"{}\"}}", o.name)),
                "missing burn gauge for {}",
                o.name
            );
            assert!(text.contains(&format!("pipesched_slo_ok{{slo=\"{}\"}}", o.name)));
        }
        assert!(text.contains("pipesched_slo_violations 0"));
    }
}
