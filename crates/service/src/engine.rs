//! The answering engine: canonical-cache lookup, then tier escalation.
//!
//! A request is answered by the cheapest tier that can justify its result:
//!
//! 1. **cache** — canonical lookup (O(1)) plus an O(n + edges) validation:
//!    the stored canonical schedule is translated through the request
//!    block's canonical permutation, re-verified for legality, and
//!    re-timed; any disagreement (a refinement-hash collision) falls
//!    through to a live search and replaces the bogus entry.
//! 2. **list** — the machine-independent list schedule, answered as
//!    *optimal* when it meets the admissible whole-block lower bound
//!    (`global_lower_bound`), costing zero search nodes.
//! 3. **windowed** — for blocks longer than the window, a locally-optimal
//!    windowed pass on a quarter of the node budget (§5.3's future-work
//!    splitting heuristic) produces a strong incumbent fast.
//! 4. **bnb** — the paper's branch-and-bound spends the remaining budget
//!    under the request deadline; if it completes, the answer is provably
//!    optimal, otherwise the best incumbent across tiers is returned with
//!    `optimal = false`.
//!
//! All tiers share one [`SchedContext`] — the DAG, dependence analysis and
//! machine tables are built once per request, never per tier.

use std::time::Instant;

use pipesched_core::proof::{Certificate, ProofLogger};
use pipesched_core::{
    global_lower_bound, parallel_prove, parallel_search, search, search_with_profile,
    search_with_proof, windowed_schedule_bounded, Backend, ParallelConfig, SchedContext,
    SearchConfig, SearchProfile,
};
use pipesched_ir::{analysis::verify_schedule, BasicBlock, DepDag, TupleId};
use pipesched_json::{json_object, Json};
use pipesched_machine::{Machine, PipelineId};
use pipesched_trace::flight::{self, Phase};
use pipesched_trace::{point2, span};

use crate::cache::{CacheEntry, ScheduleCache};
use crate::canon::{canonicalize, CanonForm};
use crate::metrics::Metrics;

/// Which tier produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Validated canonical-cache hit.
    Cache,
    /// List schedule proven optimal by the global lower bound.
    List,
    /// Windowed locally-optimal schedule.
    Windowed,
    /// The final exact tier (complete or budget-truncated). Historically
    /// named after the branch-and-bound; under [`EngineConfig::backend`]
    /// the SAT portfolio can answer here too — the [`Answer::backend`]
    /// field says which engine actually produced the schedule.
    Bnb,
}

impl Tier {
    /// Stable name used in responses and the persisted cache.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Cache => "cache",
            Tier::List => "list",
            Tier::Windowed => "windowed",
            Tier::Bnb => "bnb",
        }
    }

    /// Parse a stable name back.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "cache" => Some(Tier::Cache),
            "list" => Some(Tier::List),
            "windowed" => Some(Tier::Windowed),
            "bnb" => Some(Tier::Bnb),
            _ => None,
        }
    }

    /// Dense index for per-tier counters.
    pub fn index(self) -> usize {
        match self {
            Tier::Cache => 0,
            Tier::List => 1,
            Tier::Windowed => 2,
            Tier::Bnb => 3,
        }
    }
}

/// Per-request resource limits.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Search-node (Ω-call) budget across the escalation tiers.
    pub nodes: u64,
    /// Wall-clock deadline, if any.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            nodes: u64::MAX,
            deadline: None,
        }
    }
}

/// A served schedule plus its provenance.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Instruction order (tuple ids of the request block).
    pub order: Vec<TupleId>,
    /// Pipeline per tuple id.
    pub assignment: Vec<Option<PipelineId>>,
    /// η per position of `order`.
    pub etas: Vec<u32>,
    /// Total NOPs μ.
    pub nops: u32,
    /// True when the schedule is provably optimal.
    pub optimal: bool,
    /// True when the answer came from the cache.
    pub cache_hit: bool,
    /// Tier that produced the schedule.
    pub tier: Tier,
    /// Concrete solving backend behind the answer: `Bnb` for the search
    /// tiers (cache hits inherit the producing entry's backend), `Sat`
    /// when the SAT portfolio answered. Never `Race` — a race resolves to
    /// whichever side won.
    pub backend: Backend,
    /// Ω calls spent answering (0 for cache hits and proven list answers).
    pub omega_calls: u64,
    /// True when the wall-clock deadline cut the search short.
    pub deadline_hit: bool,
    /// FNV-1a digest of the optimality certificate backing this answer
    /// (only when the engine runs with [`EngineConfig::prove`] and the
    /// answer is provably optimal). Cache hits inherit the digest the
    /// entry was stored with.
    pub proof_digest: Option<u64>,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Default node budget for requests that specify none.
    pub default_nodes: u64,
    /// Window length for the windowed tier (blocks no longer than this
    /// skip straight to branch-and-bound).
    pub window: usize,
    /// Fraction denominator of the budget the windowed tier may spend
    /// (budget / `windowed_share`).
    pub windowed_share: u64,
    /// Record an optimality certificate for every provably optimal answer
    /// and attach its digest to the response and the cache entry. The
    /// branch-and-bound tier logs its own search; tiers proven by the
    /// global lower bound emit the shortcut by-bound certificate.
    pub prove: bool,
    /// Gate every request block through the front-end optimizer under
    /// translation validation: requests whose blocks the validator
    /// rejects (`A05xx`) are refused. The request block itself is still
    /// the one scheduled — responses index the tuples the client sent.
    /// Defaults on when `PIPESCHED_VERIFY_OPT` is set.
    pub verify_opt: bool,
    /// Which engine answers the final exact tier: the paper's
    /// branch-and-bound (default), the SAT portfolio's descending
    /// feasibility queries, or a race of the two under the shared
    /// deadline (the loser is cancelled once the winner proves
    /// optimality).
    pub backend: Backend,
    /// Worker threads for the branch-and-bound tier. `1` (the default)
    /// runs the serial kernel; any other value escalates to the
    /// work-stealing parallel search (`0` = one worker per CPU). The
    /// parallel tier honours the full request configuration — deadline,
    /// λ budget, proving — and, when proving, serves the digest of the
    /// merged multi-worker certificate.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            default_nodes: 50_000,
            window: 12,
            windowed_share: 4,
            prove: false,
            verify_opt: pipesched_analyze::verify_opt_forced(),
            backend: Backend::Bnb,
            threads: 1,
        }
    }
}

/// The shared, thread-safe answering engine.
pub struct ServiceEngine {
    cache: ScheduleCache,
    metrics: Metrics,
    config: EngineConfig,
}

impl ServiceEngine {
    /// An engine with a cache of `cache_capacity` entries over
    /// `cache_shards` shards.
    pub fn new(config: EngineConfig, cache_capacity: usize, cache_shards: usize) -> Self {
        ServiceEngine {
            cache: ScheduleCache::new(cache_capacity, cache_shards),
            metrics: Metrics::new(),
            config,
        }
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The engine's cache.
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// One-stop stats snapshot: engine metrics, cache occupancy (total,
    /// per shard) and configuration — the `/stats` payload and the local
    /// `pipesched stats` dump.
    pub fn stats_json(&self) -> Json {
        let shard_sizes: Vec<Json> = self
            .cache
            .shard_sizes()
            .into_iter()
            .map(|n| Json::Int(n as i64))
            .collect();
        json_object![
            ("metrics", self.metrics.to_json()),
            (
                "cache",
                json_object![
                    ("entries", self.cache.len() as i64),
                    ("hits", self.cache.hits() as i64),
                    ("misses", self.cache.misses() as i64),
                    ("evictions", self.cache.evictions() as i64),
                    ("shards", self.cache.shard_count() as i64),
                    ("shard_sizes", Json::Array(shard_sizes)),
                ]
            ),
            ("slo", crate::slo::to_json(&self.metrics)),
            (
                "trace",
                json_object![
                    ("stored", pipesched_trace::store::len() as i64),
                    ("capacity", pipesched_trace::store::capacity() as i64),
                    ("evicted", pipesched_trace::store::evicted_total() as i64),
                ]
            ),
            ("flight", flight::stats().to_json()),
            (
                "config",
                json_object![
                    ("default_nodes", self.config.default_nodes as i64),
                    ("window", self.config.window as i64),
                    ("windowed_share", self.config.windowed_share as i64),
                    ("prove", self.config.prove),
                    ("verify_opt", self.config.verify_opt),
                    ("backend", self.config.backend.name()),
                    ("threads", self.config.threads as i64),
                ]
            ),
        ]
    }

    /// The `/healthz` payload: readiness of the serving stack. Probes the
    /// cache shards (every shard lock must answer a size query) and runs a
    /// canned scheduling self-test through the real search kernel plus the
    /// independent legality verifier — if either wedges or answers
    /// wrongly, the replica reports unready. `workers` is the serving
    /// front end's worker-pool size (0 = no pool accepting connections).
    pub fn health_json(&self, workers: usize) -> (bool, Json) {
        let shard_sizes = self.cache.shard_sizes();
        let shards_ok = shard_sizes.len() == self.cache.shard_count();
        let selftest_ok = schedule_selftest();
        let ok = shards_ok && selftest_ok && workers > 0;
        (
            ok,
            json_object![
                ("status", if ok { "ok" } else { "unready" }),
                ("workers", workers as i64),
                ("cache_shards", shard_sizes.len() as i64),
                ("cache_shards_ok", shards_ok),
                ("schedule_selftest_ok", selftest_ok),
            ],
        )
    }

    /// The `/metrics` payload: engine metrics plus cache gauges in
    /// Prometheus text exposition.
    pub fn prometheus(&self) -> String {
        let mut w = pipesched_trace::prom::PromWriter::new();
        self.metrics.write_prometheus(&mut w);
        w.gauge(
            "pipesched_cache_entries",
            "Live schedule-cache entries.",
            self.cache.len() as f64,
        );
        w.counter(
            "pipesched_cache_evictions_total",
            "Schedule-cache LRU evictions.",
            self.cache.evictions(),
        );
        w.counter(
            "pipesched_trace_evicted_total",
            "Completed traces evicted off the trace store's ring.",
            pipesched_trace::store::evicted_total(),
        );
        let fs = flight::stats();
        w.counter(
            "pipesched_flight_events_total",
            "Wide events committed to the flight recorder.",
            fs.recorded,
        );
        w.counter(
            "pipesched_flight_evicted_total",
            "Wide events evicted off the flight recorder's ring.",
            fs.evicted,
        );
        w.counter(
            "pipesched_flight_dumps_total",
            "Anomaly dumps the flight recorder froze.",
            fs.dumps_taken,
        );
        crate::slo::write_prometheus(&self.metrics, &mut w);
        w.finish()
    }

    /// Answer one scheduling request. `budget.nodes == 0` is clamped to 1
    /// so the anytime contract (a legal schedule always comes back) holds.
    pub fn answer(&self, block: &BasicBlock, machine: &Machine, budget: Budget) -> Answer {
        let start = Instant::now();
        let mut fclock = flight::clock();
        // One DAG + context for the whole request: every tier below reuses
        // it (and the canonicalizer shares its `allowed` table).
        let dag = {
            let _s = span("dag_build");
            DepDag::build(block)
        };
        let ctx = SchedContext::new(block, &dag, machine);
        fclock.lap(Phase::Dag);
        let form = {
            let _s = span("canonicalize");
            canonicalize(&ctx)
        };
        flight::note_block(form.key.hash, form.key.n, form.key.machine_fp);
        fclock.lap(Phase::Canon);
        let nodes = budget.nodes.max(1);

        let hit = {
            let _s = span("cache_lookup");
            self.cache.get(&form.key, nodes)
        };
        if let Some(entry) = hit {
            let _s = span("cache_translate");
            match translate_hit(&ctx, &form, &entry) {
                Some(mut answer) => {
                    self.certify_debug(block, machine, &answer);
                    answer.cache_hit = true;
                    fclock.lap(Phase::Cache);
                    self.note_flight_answer(&answer, "hit");
                    self.metrics.record_answer(
                        Tier::Cache,
                        answer.backend,
                        true,
                        false,
                        start.elapsed().as_micros() as u64,
                        0,
                    );
                    return answer;
                }
                None => {
                    // Refinement-hash collision: the entry belongs to a
                    // structurally different block. Drop it and re-search.
                    self.cache.remove(&form.key);
                }
            }
        }
        fclock.lap(Phase::Cache);

        let answer = self.escalate(&ctx, budget.deadline, nodes);
        self.certify_debug(block, machine, &answer);
        {
            let _s = span("cache_store");
            self.store(&form, &answer, nodes);
        }
        fclock.lap(Phase::Search);
        self.note_flight_answer(&answer, "miss");
        self.metrics.record_answer(
            answer.tier,
            answer.backend,
            false,
            !answer.optimal,
            start.elapsed().as_micros() as u64,
            answer.omega_calls,
        );
        answer
    }

    /// Attach an answer's provenance to this thread's wide event (single
    /// relaxed load when the flight recorder is off).
    fn note_flight_answer(&self, answer: &Answer, cache: &'static str) {
        flight::note_answer(
            answer.tier.name(),
            answer.backend.name(),
            self.config.threads as u32,
            cache,
            answer.nops,
            answer.optimal,
            answer.deadline_hit,
            answer.proof_digest.unwrap_or(0),
        );
        if answer.deadline_hit {
            flight::note_outcome(flight::Outcome::DeadlineMiss);
        }
    }

    /// The tier cascade on a cache miss.
    fn escalate(&self, ctx: &SchedContext<'_>, deadline: Option<Instant>, nodes: u64) -> Answer {
        // Tier "list": λ=1 lets the search return after the lower-bound
        // pre-check — if the list schedule meets the bound it is optimal
        // and free (zero Ω calls); otherwise we get the incumbent to beat.
        let list_cfg = SearchConfig {
            lambda: 1,
            deadline,
            ..SearchConfig::default()
        };
        let list = {
            let _s = span("tier_list");
            search(ctx, &list_cfg)
        };
        self.metrics.search.record(&list.stats, true);
        note_flight_search(&list.stats);
        if list.optimal {
            let mut answer = answer_from_search(&list, Tier::List, 0);
            if self.config.prove {
                answer.proof_digest = Some(prove_digest(ctx, &answer.order, answer.nops));
            }
            return answer;
        }
        let mut omega_spent = list.stats.omega_calls;

        // Tier "windowed": only worthwhile when the block is longer than
        // the window; spends a bounded share of the budget.
        let windowed = if ctx.len() > self.config.window && nodes > 1 {
            let _s = span("tier_windowed");
            let w_nodes = (nodes / self.config.windowed_share).max(1);
            let w = windowed_schedule_bounded(ctx, self.config.window, w_nodes, deadline);
            // Windowed stats aggregate several per-window searches, so they
            // never join the identity-eligible set.
            self.metrics.search.record(&w.stats, false);
            note_flight_search(&w.stats);
            omega_spent += w.stats.omega_calls;
            Some(w)
        } else {
            None
        };
        let global_lb = global_lower_bound(ctx);
        if let Some(w) = &windowed {
            if w.nops <= global_lb {
                // The windowed schedule meets the admissible bound: optimal.
                let (etas, nops) = pipesched_core::timing::evaluate_schedule(ctx, &w.order);
                debug_assert_eq!(nops, w.nops);
                let proof_digest = self.config.prove.then(|| prove_digest(ctx, &w.order, nops));
                return Answer {
                    order: w.order.clone(),
                    assignment: ctx.sigma.clone(),
                    etas,
                    nops,
                    optimal: true,
                    cache_hit: false,
                    tier: Tier::Windowed,
                    backend: Backend::Bnb,
                    omega_calls: omega_spent,
                    deadline_hit: false,
                    proof_digest,
                };
            }
        }

        // The final exact tier: the remaining budget under the request
        // deadline goes to the configured backend — the paper's
        // branch-and-bound, the SAT portfolio's descending feasibility
        // queries, or a race of the two.
        let lambda = nodes.saturating_sub(omega_spent).max(1);
        let answer = match self.config.backend {
            Backend::Bnb => self.bnb_tier(ctx, deadline, lambda, &mut omega_spent),
            Backend::Sat => {
                let _s = span("tier_sat");
                let solve_cfg = pipesched_solve::SolveConfig {
                    deadline,
                    ..Default::default()
                };
                let out = pipesched_solve::solve_schedule(ctx, &solve_cfg);
                self.metrics.record_sat_effort(
                    out.stats.conflicts,
                    out.stats.decisions,
                    out.stats.propagations,
                );
                self.answer_from_solve(ctx, out, omega_spent)
            }
            Backend::Race => {
                let _s = span("tier_race");
                let race_cfg = pipesched_solve::RaceConfig {
                    lambda,
                    deadline,
                    // Serving latency beats cross-certification here: the
                    // loser is cancelled the moment the winner proves
                    // optimality. The CLI's race mode keeps both for the
                    // full agreement check.
                    cancel_loser: true,
                    ..Default::default()
                };
                let out = pipesched_solve::race(ctx, &race_cfg);
                self.metrics.search.record(&out.bnb.stats, true);
                note_flight_search(&out.bnb.stats);
                if out.disagreement {
                    flight::note_outcome(flight::Outcome::Disagreement);
                }
                self.metrics.record_sat_effort(
                    out.sat.stats.conflicts,
                    out.sat.stats.decisions,
                    out.sat.stats.propagations,
                );
                omega_spent += out.bnb.stats.omega_calls;
                point2("race_bnb_micros", 0, out.bnb_micros as i64);
                point2("race_sat_micros", 0, out.sat_micros as i64);
                // A disagreement between two optimality proofs means one
                // of them is wrong; `race` already refuses to answer from
                // the SAT side in that case, and the certifier rejects the
                // served schedule in debug builds.
                debug_assert!(
                    !out.disagreement,
                    "SAT and branch-and-bound disagree on the optimal NOP count"
                );
                if out.winner == Backend::Sat {
                    self.answer_from_solve(ctx, out.sat, omega_spent)
                } else {
                    let mut a = answer_from_search(&out.bnb, Tier::Bnb, omega_spent);
                    if self.config.prove && a.optimal {
                        a.proof_digest = Some(prove_digest(ctx, &a.order, a.nops));
                    }
                    a
                }
            }
        };

        // The final tier starts from the list incumbent, so it can only
        // tie or beat the list tier; the windowed candidate may still be
        // better when the exact search was truncated early.
        if let Some(w) = windowed {
            if !answer.optimal && w.nops < answer.nops {
                let (etas, nops) = pipesched_core::timing::evaluate_schedule(ctx, &w.order);
                debug_assert_eq!(nops, w.nops);
                return Answer {
                    order: w.order,
                    assignment: ctx.sigma.clone(),
                    etas,
                    nops,
                    optimal: false,
                    cache_hit: false,
                    tier: Tier::Windowed,
                    backend: Backend::Bnb,
                    omega_calls: answer.omega_calls,
                    deadline_hit: answer.deadline_hit || w.stats.deadline_hit,
                    proof_digest: None,
                };
            }
        }
        answer
    }

    /// The branch-and-bound variant of the final tier: proving, profiled,
    /// or plain depending on configuration and whether a trace records.
    fn bnb_tier(
        &self,
        ctx: &SchedContext<'_>,
        deadline: Option<Instant>,
        lambda: u64,
        omega_spent: &mut u64,
    ) -> Answer {
        let bnb_cfg = SearchConfig {
            lambda,
            deadline,
            ..SearchConfig::default()
        };
        if self.config.threads != 1 {
            return self.parallel_bnb_tier(ctx, &bnb_cfg, omega_spent);
        }
        let (bnb, bnb_digest) = if self.config.prove {
            let _s = span("tier_bnb");
            let (out, proof) = search_with_proof(ctx, &bnb_cfg, ProofLogger::in_memory());
            // A truncated transcript is not a proof; attach nothing.
            let digest = out.optimal.then_some(proof.digest);
            (out, digest)
        } else if pipesched_trace::active() {
            // A trace is recording: run the profiled search (identical
            // result, per-depth counters) and attach the depth breakdown
            // to the tier span as points.
            let _s = span("tier_bnb");
            let mut profile = SearchProfile::new();
            let out = search_with_profile(ctx, &bnb_cfg, &mut profile);
            for (depth, d) in profile.depths.iter().enumerate() {
                point2("bnb_depth_nodes", depth as i64, d.nodes as i64);
                point2("bnb_depth_omega", depth as i64, d.omega_calls as i64);
                point2(
                    "bnb_depth_pruned_bound",
                    depth as i64,
                    d.pruned_bound as i64,
                );
            }
            (out, None)
        } else {
            let _s = span("tier_bnb");
            (search(ctx, &bnb_cfg), None)
        };
        self.metrics.search.record(&bnb.stats, true);
        note_flight_search(&bnb.stats);
        *omega_spent += bnb.stats.omega_calls;
        let mut answer = answer_from_search(&bnb, Tier::Bnb, *omega_spent);
        answer.proof_digest = bnb_digest;
        answer
    }

    /// The work-stealing parallel variant of the final tier. Stats are
    /// recorded without the single-search node identity (a pool's bound
    /// prunes include deferred task drops), and the steal/split counters
    /// feed the parallel gauges. When proving, the per-worker transcripts
    /// are merged into one certificate and its digest attached.
    fn parallel_bnb_tier(
        &self,
        ctx: &SchedContext<'_>,
        bnb_cfg: &SearchConfig,
        omega_spent: &mut u64,
    ) -> Answer {
        let par = ParallelConfig::with_threads(self.config.threads);
        let _s = span("tier_bnb_parallel");
        let (out, digest) = if self.config.prove {
            let (out, proof) = parallel_prove(ctx, bnb_cfg, &par);
            let digest = out.optimal.then(|| proof.merge().digest());
            (out, digest)
        } else {
            (parallel_search(ctx, bnb_cfg, &par), None)
        };
        self.metrics.search.record(&out.stats, false);
        note_flight_search(&out.stats);
        self.metrics
            .record_parallel(out.stats.steals, out.stats.splits);
        *omega_spent += out.stats.omega_calls;
        let mut answer = answer_from_search(&out, Tier::Bnb, *omega_spent);
        answer.proof_digest = digest;
        answer
    }

    /// Package a SAT-portfolio outcome as a served answer. The proof
    /// digest, when proving is on, comes from the by-bound shortcut or a
    /// fresh certificate-logged search — the SAT query trail itself is
    /// audited by `pipesched-solve`, not persisted as a certificate.
    fn answer_from_solve(
        &self,
        ctx: &SchedContext<'_>,
        out: pipesched_solve::SolveOutcome,
        omega_calls: u64,
    ) -> Answer {
        let proof_digest =
            (self.config.prove && out.optimal).then(|| prove_digest(ctx, &out.order, out.nops));
        Answer {
            order: out.order,
            assignment: out.assignment,
            etas: out.etas,
            nops: out.nops,
            optimal: out.optimal,
            cache_hit: false,
            tier: Tier::Bnb,
            backend: Backend::Sat,
            omega_calls,
            deadline_hit: out.stats.deadline_hit,
            proof_digest,
        }
    }

    /// Memoize an answer in canonical coordinates.
    fn store(&self, form: &CanonForm, answer: &Answer, nodes: u64) {
        let inv = form.inverse();
        let order_c: Vec<u32> = answer.order.iter().map(|t| inv[t.index()]).collect();
        let mut assignment_c = vec![u32::MAX; form.perm.len()];
        for (id, a) in answer.assignment.iter().enumerate() {
            assignment_c[inv[id] as usize] = a.map_or(u32::MAX, |p| p.index() as u32);
        }
        self.cache.insert(
            form.key,
            CacheEntry {
                order_c,
                assignment_c,
                etas: answer.etas.clone(),
                nops: answer.nops,
                optimal: answer.optimal,
                budget_nodes: if answer.optimal { u64::MAX } else { nodes },
                tier: answer.tier,
                backend: answer.backend,
                proof_digest: answer.proof_digest,
            },
        );
    }

    /// Debug-build certification of every served schedule against the
    /// independent re-derivation in `pipesched-analyze`.
    fn certify_debug(&self, block: &BasicBlock, machine: &Machine, answer: &Answer) {
        pipesched_analyze::debug_assert_claim_certified(
            block,
            machine,
            pipesched_analyze::Claim {
                order: &answer.order,
                assignment: Some(&answer.assignment),
                etas: Some(&answer.etas),
                nops: Some(answer.nops),
            },
        );
    }
}

/// The `/healthz` scheduling self-test: schedule a canned 6-tuple block
/// through the real search kernel and verify the result with the
/// independent legality checker. Runs outside the engine's metrics and
/// cache so probes never skew production telemetry.
fn schedule_selftest() -> bool {
    let mut b = pipesched_ir::BlockBuilder::new("healthz");
    let x = b.load("hx");
    let y = b.load("hy");
    let m = b.mul(x, y);
    let a = b.add(x, y);
    b.store("hm", m);
    b.store("ha", a);
    let Ok(block) = b.finish() else {
        return false;
    };
    let machine = pipesched_machine::presets::paper_simulation();
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let out = search(&ctx, &SearchConfig::with_lambda(1_000));
    verify_schedule(&block, &dag, &out.order).is_ok() && out.etas.iter().sum::<u32>() == out.nops
}

/// Accumulate one search run's effort onto this thread's wide event.
fn note_flight_search(stats: &pipesched_core::SearchStats) {
    flight::note_search(stats.nodes_visited, stats.omega_calls, stats.pruned_total());
}

fn answer_from_search(out: &pipesched_core::SearchOutcome, tier: Tier, omega_calls: u64) -> Answer {
    Answer {
        order: out.order.clone(),
        assignment: out.assignment.clone(),
        etas: out.etas.clone(),
        nops: out.nops,
        optimal: out.optimal,
        cache_hit: false,
        tier,
        backend: Backend::Bnb,
        omega_calls,
        deadline_hit: out.stats.deadline_hit,
        proof_digest: None,
    }
}

/// Certificate digest for an answer already proven optimal without a full
/// search transcript: when the schedule meets the admissible whole-block
/// lower bound, the shortcut by-bound certificate suffices; otherwise (a
/// tiny block whose λ=1 search completed exhaustively) a fresh fully-logged
/// search is cheap.
fn prove_digest(ctx: &SchedContext<'_>, order: &[TupleId], nops: u32) -> u64 {
    let _s = span("prove");
    // The prove phase runs inside the search lap, so wide events report it
    // both standalone (`us_prove`) and as part of `us_search`.
    let t0 = flight::active().then(Instant::now);
    let digest = {
        let lb = global_lower_bound(ctx);
        if nops == lb {
            let order: Vec<u32> = order.iter().map(|t| t.0).collect();
            Certificate::by_bound(ctx.len() as u32, order, nops, lb).digest()
        } else {
            let cfg = SearchConfig {
                lambda: u64::MAX,
                ..SearchConfig::default()
            };
            let (_, cert) = pipesched_core::prove(ctx, &cfg);
            cert.digest()
        }
    };
    if let Some(t0) = t0 {
        flight::phase_us(Phase::Prove, t0.elapsed().as_micros() as u64);
    }
    digest
}

/// Replay a cached canonical schedule on a (possibly different) block with
/// the same canonical form. Returns `None` — treat as a miss — unless the
/// translated order is verifiably legal on *this* block's DAG and re-timing
/// it reproduces the stored η/μ exactly.
pub(crate) fn translate_hit(
    ctx: &SchedContext<'_>,
    form: &CanonForm,
    entry: &CacheEntry,
) -> Option<Answer> {
    let n = ctx.len();
    if entry.order_c.len() != n {
        return None;
    }
    let order: Vec<TupleId> = entry
        .order_c
        .iter()
        .map(|&c| form.perm.get(c as usize).copied())
        .collect::<Option<_>>()?;
    let mut assignment: Vec<Option<PipelineId>> = vec![None; n];
    let pipes = ctx.machine.pipeline_count();
    for (c, &a) in entry.assignment_c.iter().enumerate() {
        let id = form.perm.get(c)?.index();
        assignment[id] = if a == u32::MAX {
            None
        } else if (a as usize) < pipes {
            Some(PipelineId(a))
        } else {
            return None;
        };
    }
    verify_schedule(ctx.block, ctx.dag, &order).ok()?;
    // Re-time with the translated assignment; the replayed schedule must
    // reproduce the stored padding bit for bit, else the hit is bogus.
    let mut engine = pipesched_core::TimingEngine::new(ctx);
    let etas: Vec<u32> = order
        .iter()
        .map(|&t| engine.push(t, assignment[t.index()]))
        .collect();
    let nops = engine.total_nops();
    if nops != entry.nops || etas != entry.etas {
        return None;
    }
    Some(Answer {
        order,
        assignment,
        etas,
        nops,
        optimal: entry.optimal,
        cache_hit: true,
        tier: Tier::Cache,
        backend: entry.backend,
        omega_calls: 0,
        deadline_hit: false,
        proof_digest: entry.proof_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    fn engine() -> ServiceEngine {
        ServiceEngine::new(EngineConfig::default(), 64, 4)
    }

    fn block_with(names: [&str; 4]) -> BasicBlock {
        let mut b = BlockBuilder::new("e2e");
        let x = b.load(names[0]);
        let y = b.load(names[1]);
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store(names[2], m);
        b.store(names[3], a);
        b.finish().unwrap()
    }

    #[test]
    fn second_request_hits_the_cache() {
        let eng = engine();
        let machine = presets::paper_simulation();
        let first = eng.answer(
            &block_with(["x", "y", "m", "a"]),
            &machine,
            Budget::unlimited(),
        );
        assert!(!first.cache_hit);
        // Renamed block: isomorphic, must hit.
        let second = eng.answer(
            &block_with(["p", "q", "r", "s"]),
            &machine,
            Budget::unlimited(),
        );
        assert!(second.cache_hit);
        assert_eq!(second.tier, Tier::Cache);
        assert_eq!(second.nops, first.nops);
        assert_eq!(second.optimal, first.optimal);
        assert_eq!(second.omega_calls, 0);
        assert_eq!(eng.cache().hits(), 1);
    }

    #[test]
    fn unlimited_budget_matches_serial_bnb() {
        let eng = engine();
        let machine = presets::paper_simulation();
        let block = block_with(["x", "y", "m", "a"]);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let reference = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
        let served = eng.answer(&block, &machine, Budget::unlimited());
        assert!(served.optimal && reference.optimal);
        assert_eq!(served.nops, reference.nops);
        assert_eq!(served.order, reference.order, "bit-identical schedule");
        assert_eq!(served.etas, reference.etas);
    }

    #[test]
    fn tiny_budget_still_returns_a_legal_schedule() {
        let eng = engine();
        let machine = presets::paper_simulation();
        // Contended block that cannot be proven optimal in 2 nodes.
        let mut b = BlockBuilder::new("hard");
        for i in 0..5 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let answer = eng.answer(
            &block,
            &machine,
            Budget {
                nodes: 2,
                deadline: None,
            },
        );
        assert!(!answer.optimal);
        let dag = DepDag::build(&block);
        verify_schedule(&block, &dag, &answer.order).unwrap();
        assert_eq!(answer.etas.iter().sum::<u32>(), answer.nops);
    }

    #[test]
    fn expired_deadline_still_returns_a_legal_schedule() {
        let eng = engine();
        let machine = presets::paper_simulation();
        let block = block_with(["x", "y", "m", "a"]);
        let answer = eng.answer(
            &block,
            &machine,
            Budget {
                nodes: u64::MAX,
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            },
        );
        let dag = DepDag::build(&block);
        verify_schedule(&block, &dag, &answer.order).unwrap();
        // Either the pre-check proved the list schedule optimal before the
        // clock was read, or the answer is flagged truncated.
        if !answer.optimal {
            assert!(answer.deadline_hit);
        }
    }

    #[test]
    fn bigger_budget_is_not_answered_by_a_truncated_entry() {
        let eng = engine();
        let machine = presets::paper_simulation();
        let mut b = BlockBuilder::new("re");
        for i in 0..5 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let small = eng.answer(
            &block,
            &machine,
            Budget {
                nodes: 2,
                deadline: None,
            },
        );
        assert!(!small.optimal);
        let big = eng.answer(&block, &machine, Budget::unlimited());
        assert!(!big.cache_hit, "truncated entry must not answer");
        assert!(big.optimal);
        assert!(big.nops <= small.nops);
        // And now the optimal entry serves any budget.
        let again = eng.answer(
            &block,
            &machine,
            Budget {
                nodes: 2,
                deadline: None,
            },
        );
        assert!(again.cache_hit);
        assert!(again.optimal);
    }

    #[test]
    fn different_machines_do_not_share_entries() {
        let eng = engine();
        let block = block_with(["x", "y", "m", "a"]);
        let a = eng.answer(&block, &presets::paper_simulation(), Budget::unlimited());
        let b = eng.answer(&block, &presets::deep_pipeline(), Budget::unlimited());
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(eng.cache().len(), 2);
    }

    #[test]
    fn windowed_tier_answers_long_blocks_with_small_budget() {
        let cfg = EngineConfig {
            window: 4,
            ..Default::default()
        };
        let eng = ServiceEngine::new(cfg, 16, 2);
        let machine = presets::paper_simulation();
        let mut b = BlockBuilder::new("long");
        for i in 0..8 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let answer = eng.answer(
            &block,
            &machine,
            Budget {
                nodes: 400,
                deadline: None,
            },
        );
        let dag = DepDag::build(&block);
        verify_schedule(&block, &dag, &answer.order).unwrap();
        assert!(answer.omega_calls <= 400 + 1);
    }

    #[test]
    fn sat_backend_matches_the_default_engine() {
        let machine = presets::paper_simulation();
        let block = block_with(["x", "y", "m", "a"]);
        let reference = engine().answer(&block, &machine, Budget::unlimited());
        let sat_engine = ServiceEngine::new(
            EngineConfig {
                backend: Backend::Sat,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let served = sat_engine.answer(&block, &machine, Budget::unlimited());
        assert!(served.optimal && reference.optimal);
        assert_eq!(served.nops, reference.nops);
        // The list tier answers with the B&B backend even on a SAT engine;
        // only answers from the exact tier carry `Backend::Sat`. Either
        // way the backend is recorded in the metrics and the cache.
        if served.tier == Tier::Bnb {
            assert_eq!(served.backend, Backend::Sat);
        } else {
            assert_eq!(served.backend, Backend::Bnb);
        }
        let dag = DepDag::build(&block);
        verify_schedule(&block, &dag, &served.order).unwrap();
        // A renamed repeat hits the cache and inherits the entry backend.
        let repeat = sat_engine.answer(
            &block_with(["p", "q", "r", "s"]),
            &machine,
            Budget::unlimited(),
        );
        assert!(repeat.cache_hit);
        assert_eq!(repeat.backend, served.backend);
    }

    #[test]
    fn sat_backend_answers_contended_blocks_optimally() {
        // A block the list tier cannot prove by the bound, forcing the
        // exact tier to actually run the descending SAT queries.
        let machine = presets::deep_pipeline();
        let mut b = BlockBuilder::new("contended");
        for i in 0..4 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let reference = engine().answer(&block, &machine, Budget::unlimited());
        let sat_engine = ServiceEngine::new(
            EngineConfig {
                backend: Backend::Sat,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let served = sat_engine.answer(&block, &machine, Budget::unlimited());
        assert!(served.optimal && reference.optimal);
        assert_eq!(served.nops, reference.nops);
    }

    #[test]
    fn race_backend_agrees_and_records_a_winner() {
        let machine = presets::paper_simulation();
        let mut b = BlockBuilder::new("raced");
        for i in 0..3 {
            let l = b.load(&format!("x{i}"));
            let m = b.mul(l, l);
            b.store(&format!("y{i}"), m);
        }
        let block = b.finish().unwrap();
        let reference = engine().answer(&block, &machine, Budget::unlimited());
        let race_engine = ServiceEngine::new(
            EngineConfig {
                backend: Backend::Race,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let served = race_engine.answer(&block, &machine, Budget::unlimited());
        assert!(served.optimal && reference.optimal);
        assert_eq!(served.nops, reference.nops);
        assert_ne!(served.backend, Backend::Race, "race resolves to a side");
        let dag = DepDag::build(&block);
        verify_schedule(&block, &dag, &served.order).unwrap();
    }
}
