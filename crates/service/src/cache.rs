//! Sharded memoization cache for canonical schedules.
//!
//! Entries live in canonical coordinates (see [`crate::canon`]): the stored
//! order and assignment refer to canonical indices, so one entry serves
//! every block isomorphic to the one that populated it. Lookup cost is one
//! shard-mutex acquisition plus a `HashMap` probe — O(1) in the block size
//! — and hit translation back into tuple ids is O(n + edges), dominated by
//! the legality re-verification the engine performs anyway.
//!
//! Eviction is least-recently-used per shard, driven by a global monotonic
//! use-stamp; shards bound both memory and lock contention. An optional
//! on-disk layer persists entries as JSON (`pipesched-json`), relying on the
//! build-stable FNV hashing of the keys.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use pipesched_core::Backend;
use pipesched_json::Json;

use crate::canon::CanonKey;
use crate::engine::Tier;

/// A memoized schedule in canonical coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Canonical indices in issue order.
    pub order_c: Vec<u32>,
    /// Pipeline index per canonical index (`u32::MAX` ⇒ no pipeline).
    pub assignment_c: Vec<u32>,
    /// η per position of `order_c`.
    pub etas: Vec<u32>,
    /// Total NOPs μ of the stored schedule.
    pub nops: u32,
    /// True when the stored schedule is provably optimal.
    pub optimal: bool,
    /// Node budget the producing search ran under; a non-optimal entry only
    /// satisfies requests whose budget is no larger.
    pub budget_nodes: u64,
    /// Which tier produced the entry.
    pub tier: Tier,
    /// Which solving backend produced the entry (B&B for the heuristic
    /// tiers; SAT when the portfolio answered). Hits inherit it.
    pub backend: Backend,
    /// Digest of the optimality certificate backing the entry, when the
    /// producing engine ran with proving enabled (see
    /// [`crate::engine::EngineConfig::prove`]).
    pub proof_digest: Option<u64>,
}

impl CacheEntry {
    /// True when this entry answers a request allowed `budget_nodes` search
    /// nodes: optimal entries answer everything; a truncated entry must
    /// have been given at least as much budget as the request offers,
    /// otherwise re-searching could return a better schedule.
    pub fn satisfies(&self, budget_nodes: u64) -> bool {
        self.optimal || self.budget_nodes >= budget_nodes
    }
}

struct Shard {
    map: HashMap<CanonKey, (CacheEntry, u64)>,
    capacity: usize,
}

impl Shard {
    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| *k)
        {
            self.map.remove(&key);
        }
    }
}

/// Sharded LRU cache keyed by [`CanonKey`].
pub struct ScheduleCache {
    shards: Vec<Mutex<Shard>>,
    stamp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both floored at 1; per-shard capacity is the ceiling division so
    /// the total is never below `capacity`).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ScheduleCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
            stamp: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CanonKey) -> &Mutex<Shard> {
        // The key hash already mixes well; fold in n for degenerate cases.
        let i = (key.hash ^ u64::from(key.n)) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Look up `key`, refreshing its LRU stamp on success. `budget_nodes`
    /// filters entries that cannot satisfy the request (see
    /// [`CacheEntry::satisfies`]).
    pub fn get(&self, key: &CanonKey, budget_nodes: u64) -> Option<CacheEntry> {
        let mut shard = self.shard_of(key).lock();
        match shard.map.get_mut(key) {
            Some((entry, stamp)) if entry.satisfies(budget_nodes) => {
                *stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) the entry for `key`, evicting the shard's LRU
    /// entry if it is full.
    pub fn insert(&self, key: CanonKey, entry: CacheEntry) {
        let mut shard = self.shard_of(&key).lock();
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        if !shard.map.contains_key(&key) && shard.map.len() >= shard.capacity {
            shard.evict_lru();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.map.insert(key, (entry, stamp));
    }

    /// Drop the entry for `key` (used when a validated hit turns out to be
    /// a hash collision: the entry answers some *other* block).
    pub fn remove(&self, key: &CanonKey) {
        self.shard_of(key).lock().map.remove(key);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live entries per shard (for the stats exposition; shows skew).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().map.len()).collect()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Serialize every entry to the persisted-cache JSON document.
    pub fn to_json(&self) -> Json {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, (entry, _)) in shard.map.iter() {
                let mut doc = pipesched_json::json_object![
                    ("hash", format!("{:016x}", key.hash)),
                    ("n", key.n),
                    ("machine_fp", format!("{:016x}", key.machine_fp)),
                    ("order", entry.order_c.clone()),
                    ("assignment", entry.assignment_c.clone()),
                    ("etas", entry.etas.clone()),
                    ("nops", entry.nops),
                    ("optimal", entry.optimal),
                    ("budget", format!("{:x}", entry.budget_nodes)),
                    ("tier", entry.tier.name()),
                    ("backend", entry.backend.name()),
                ];
                if let Some(digest) = entry.proof_digest {
                    if let Json::Object(pairs) = &mut doc {
                        pairs.push((
                            "proof_digest".to_string(),
                            Json::Str(format!("{digest:016x}")),
                        ));
                    }
                }
                entries.push(doc);
            }
        }
        pipesched_json::json_object![("version", 1i64), ("entries", Json::Array(entries)),]
    }

    /// Load entries from a persisted-cache JSON document, merging into the
    /// current contents. Returns the number of entries loaded; malformed
    /// entries are skipped, an unrecognized version is an error.
    pub fn load_json(&self, doc: &Json) -> Result<usize, String> {
        match doc.get("version").and_then(Json::as_i64) {
            Some(1) => {}
            other => return Err(format!("unsupported cache version {other:?}")),
        }
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("cache document has no entries array")?;
        let mut loaded = 0usize;
        for e in entries {
            if let Some((key, entry)) = parse_entry(e) {
                self.insert(key, entry);
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Persist the cache to `path` (compact JSON).
    pub fn save_to_path(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_compact()).map_err(|e| format!("write {path}: {e}"))
    }

    /// Merge a persisted cache file into this cache. A missing file is not
    /// an error (first run); malformed JSON is.
    pub fn load_from_path(&self, path: &str) -> Result<usize, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(format!("read {path}: {e}")),
        };
        let doc = pipesched_json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
        self.load_json(&doc)
    }
}

fn hex_u64(doc: &Json, key: &str) -> Option<u64> {
    u64::from_str_radix(doc.get(key)?.as_str()?, 16).ok()
}

fn u32_array(doc: &Json, key: &str) -> Option<Vec<u32>> {
    doc.get(key)?
        .as_array()?
        .iter()
        .map(|v| u32::try_from(v.as_i64()?).ok())
        .collect()
}

fn parse_entry(e: &Json) -> Option<(CanonKey, CacheEntry)> {
    let key = CanonKey {
        hash: hex_u64(e, "hash")?,
        n: u32::try_from(e.get("n")?.as_i64()?).ok()?,
        machine_fp: hex_u64(e, "machine_fp")?,
    };
    let order_c = u32_array(e, "order")?;
    let assignment_c = u32_array(e, "assignment")?;
    let etas = u32_array(e, "etas")?;
    if order_c.len() != key.n as usize
        || assignment_c.len() != key.n as usize
        || etas.len() != key.n as usize
    {
        return None;
    }
    let entry = CacheEntry {
        order_c,
        assignment_c,
        etas,
        nops: u32::try_from(e.get("nops")?.as_i64()?).ok()?,
        optimal: e.get("optimal")?.as_bool()?,
        budget_nodes: hex_u64(e, "budget")?,
        tier: Tier::from_name(e.get("tier")?.as_str()?)?,
        // Optional: caches persisted before the SAT portfolio existed
        // carry no backend field; everything back then was the B&B.
        backend: e
            .get("backend")
            .and_then(Json::as_str)
            .and_then(Backend::from_name)
            .unwrap_or(Backend::Bnb),
        // Optional: entries persisted by a non-proving engine have none.
        proof_digest: hex_u64(e, "proof_digest"),
    };
    Some((key, entry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(hash: u64) -> CanonKey {
        CanonKey {
            hash,
            n: 3,
            machine_fp: 7,
        }
    }

    fn entry(nops: u32, optimal: bool) -> CacheEntry {
        CacheEntry {
            order_c: vec![0, 1, 2],
            assignment_c: vec![0, u32::MAX, 1],
            etas: vec![0, 1, 0],
            nops,
            optimal,
            budget_nodes: 100,
            tier: Tier::Bnb,
            backend: Backend::Bnb,
            proof_digest: None,
        }
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ScheduleCache::new(8, 2);
        cache.insert(key(1), entry(2, true));
        assert_eq!(cache.get(&key(1), u64::MAX), Some(entry(2, true)));
        assert_eq!(cache.get(&key(2), u64::MAX), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn budget_filter_rejects_underfunded_entries() {
        let cache = ScheduleCache::new(8, 1);
        cache.insert(key(1), entry(2, false)); // budget_nodes = 100
        assert!(cache.get(&key(1), 50).is_some(), "smaller budget: ok");
        assert!(cache.get(&key(1), 100).is_some(), "equal budget: ok");
        assert!(
            cache.get(&key(1), 1000).is_none(),
            "larger budget must re-search"
        );
        // An optimal entry satisfies any budget.
        cache.insert(key(1), entry(2, true));
        assert!(cache.get(&key(1), u64::MAX).is_some());
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = ScheduleCache::new(2, 1);
        cache.insert(key(1), entry(1, true));
        cache.insert(key(2), entry(2, true));
        // Touch key 1 so key 2 is the LRU.
        assert!(cache.get(&key(1), u64::MAX).is_some());
        cache.insert(key(3), entry(3, true));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(1), u64::MAX).is_some());
        assert!(cache.get(&key(2), u64::MAX).is_none(), "LRU was evicted");
        assert!(cache.get(&key(3), u64::MAX).is_some());
    }

    #[test]
    fn json_round_trip_preserves_backend_and_legacy_entries_default_to_bnb() {
        let cache = ScheduleCache::new(8, 1);
        let mut sat_entry = entry(2, true);
        sat_entry.backend = Backend::Sat;
        cache.insert(key(21), sat_entry.clone());
        let parsed = pipesched_json::parse(&cache.to_json().to_compact()).unwrap();
        let other = ScheduleCache::new(8, 1);
        assert_eq!(other.load_json(&parsed).unwrap(), 1);
        assert_eq!(other.get(&key(21), u64::MAX), Some(sat_entry));
        // A pre-portfolio document without the field loads as B&B.
        let legacy = r#"{"version": 1, "entries": [{
            "hash": "0000000000000015", "n": 3, "machine_fp": "0000000000000007",
            "order": [0, 1, 2], "assignment": [0, 4294967295, 1],
            "etas": [0, 1, 0], "nops": 2, "optimal": true,
            "budget": "64", "tier": "bnb"}]}"#;
        let third = ScheduleCache::new(8, 1);
        assert_eq!(
            third
                .load_json(&pipesched_json::parse(legacy).unwrap())
                .unwrap(),
            1
        );
        assert_eq!(
            third.get(&key(0x15), u64::MAX).unwrap().backend,
            Backend::Bnb
        );
    }

    #[test]
    fn json_round_trip_preserves_proof_digest() {
        let cache = ScheduleCache::new(8, 1);
        let mut with_proof = entry(2, true);
        with_proof.proof_digest = Some(0x0123_4567_89ab_cdef);
        cache.insert(key(11), with_proof.clone());
        let parsed = pipesched_json::parse(&cache.to_json().to_compact()).unwrap();
        let other = ScheduleCache::new(8, 1);
        assert_eq!(other.load_json(&parsed).unwrap(), 1);
        assert_eq!(other.get(&key(11), u64::MAX), Some(with_proof));
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let cache = ScheduleCache::new(8, 2);
        cache.insert(key(0xdead_beef), entry(2, true));
        cache.insert(key(0xfeed_f00d), entry(5, false));
        let doc = cache.to_json();
        let text = doc.to_compact();
        let parsed = pipesched_json::parse(&text).unwrap();
        let other = ScheduleCache::new(8, 3);
        assert_eq!(other.load_json(&parsed).unwrap(), 2);
        assert_eq!(other.get(&key(0xdead_beef), u64::MAX), Some(entry(2, true)));
        assert_eq!(other.get(&key(0xfeed_f00d), 100), Some(entry(5, false)));
    }

    #[test]
    fn load_rejects_unknown_version() {
        let cache = ScheduleCache::new(8, 1);
        let doc = pipesched_json::parse(r#"{"version": 99, "entries": []}"#).unwrap();
        assert!(cache.load_json(&doc).is_err());
    }

    #[test]
    fn remove_drops_the_entry() {
        let cache = ScheduleCache::new(8, 1);
        cache.insert(key(1), entry(1, true));
        cache.remove(&key(1));
        assert!(cache.get(&key(1), u64::MAX).is_none());
        assert!(cache.is_empty());
    }
}
