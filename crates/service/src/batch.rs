//! Batch replay: push a request file through the full serving path and
//! measure what came back.
//!
//! `run_batch` feeds an NDJSON request text through [`serve_stream`] (so
//! the worker pool, cache, and response rendering are all exercised — this
//! is the same code path a TCP client hits), times the run, and summarizes
//! it. With `check` enabled every response is re-parsed and certified
//! against its request by `pipesched-analyze`'s independent re-derivation,
//! turning the batch runner into an end-to-end smoke test: the CI gate
//! replays a canned workload and requires 100% certifier-clean responses
//! plus a non-zero cache-hit count.

use std::time::Instant;

use pipesched_analyze::{certify, Claim};
use pipesched_ir::TupleId;
use pipesched_json::{json_object, Json};
use pipesched_machine::PipelineId;
use pipesched_trace::flight;

use crate::engine::ServiceEngine;
use crate::request::parse_request;
use crate::serve::{serve_stream, ServeConfig};

/// What a batch replay did.
#[derive(Debug)]
pub struct BatchSummary {
    /// Request lines fed in.
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Validated cache hits.
    pub cache_hits: u64,
    /// Responses flagged `optimal=false`.
    pub truncated: u64,
    /// Successful responses answered by the branch-and-bound backend.
    pub backend_bnb: u64,
    /// Successful responses answered by the SAT backend.
    pub backend_sat: u64,
    /// Responses that passed independent certification (only counted when
    /// `check` was on).
    pub certified: u64,
    /// Responses that failed certification.
    pub certify_failures: u64,
    /// Optimal responses whose claim survived a full proof replay: a fresh
    /// certificate-logged search plus the independent checker (only
    /// counted when `prove` was on).
    pub proved: u64,
    /// Optimal responses whose proof replay was rejected or disagreed with
    /// the response μ.
    pub proof_failures: u64,
    /// Wall-clock for the whole replay, microseconds.
    pub wall_micros: u64,
    /// Search-tree nodes visited answering this batch (delta of the
    /// engine's fleet-wide [`crate::metrics::SearchAggregate`]).
    pub search_nodes: u64,
    /// Ω calls spent answering this batch.
    pub search_omega: u64,
    /// Candidates pruned answering this batch, summed over every rule.
    pub search_pruned: u64,
    /// Whether the engine's aggregate `1 + Ω − bound-pruned == nodes`
    /// identity still held after the replay.
    pub identity_ok: bool,
    /// The response lines, in request order.
    pub responses: Vec<String>,
}

impl BatchSummary {
    /// Requests per second over the whole replay.
    pub fn throughput(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.requests as f64 * 1e6 / self.wall_micros as f64
        }
    }

    /// Summary as a JSON object (responses excluded).
    pub fn to_json(&self) -> Json {
        json_object![
            ("requests", self.requests as i64),
            ("ok", self.ok as i64),
            ("errors", self.errors as i64),
            ("cache_hits", self.cache_hits as i64),
            ("truncated", self.truncated as i64),
            (
                "backend_answers",
                json_object![
                    ("bnb", self.backend_bnb as i64),
                    ("sat", self.backend_sat as i64),
                ]
            ),
            ("certified", self.certified as i64),
            ("certify_failures", self.certify_failures as i64),
            ("proved", self.proved as i64),
            ("proof_failures", self.proof_failures as i64),
            ("wall_micros", self.wall_micros as i64),
            ("throughput_rps", self.throughput()),
            ("search_nodes", self.search_nodes as i64),
            ("search_omega", self.search_omega as i64),
            ("search_pruned", self.search_pruned as i64),
            ("identity_ok", self.identity_ok),
        ]
    }
}

/// Replay `input` (NDJSON request text) through `engine`. When `check` is
/// set, every successful response is certified against its request line;
/// when `prove` is also set, every response claiming `optimal` is
/// escalated to a full proof replay — a certificate-logged search of the
/// request block, checked by the independent `pipesched-proof` checker,
/// whose certified μ must equal the response's.
pub fn run_batch(
    engine: &ServiceEngine,
    input: &str,
    config: &ServeConfig,
    check: bool,
    prove: bool,
) -> std::io::Result<BatchSummary> {
    let hits_before = engine.cache().hits();
    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    let agg = &engine.metrics().search;
    let nodes_before = load(&agg.nodes_visited);
    let omega_before = load(&agg.omega_calls);
    let pruned =
        |a: &crate::metrics::SearchAggregate| a.prune_totals().iter().map(|(_, n)| n).sum::<u64>();
    let pruned_before = pruned(agg);
    let start = Instant::now();
    let mut out = Vec::new();
    serve_stream(engine, input.as_bytes(), &mut out, config)?;
    let wall_micros = start.elapsed().as_micros() as u64;

    let responses: Vec<String> = String::from_utf8_lossy(&out)
        .lines()
        .map(str::to_string)
        .collect();
    let mut summary = summarize_responses(
        input,
        responses,
        wall_micros,
        engine.cache().hits() - hits_before,
        check,
        prove,
    );
    summary.search_nodes = load(&agg.nodes_visited) - nodes_before;
    summary.search_omega = load(&agg.omega_calls) - omega_before;
    summary.search_pruned = pruned(agg) - pruned_before;
    summary.identity_ok = agg.identity_holds();
    Ok(summary)
}

/// Build a [`BatchSummary`] from the request text and the response lines
/// it produced. Used by `run_batch` and by remote replays (the CLI's
/// `batch --tcp` client mode) where only the response text is available —
/// there the search-effort fields stay zero (the effort happened in the
/// server process) and `identity_ok` stays vacuously true.
pub fn summarize_responses(
    input: &str,
    responses: Vec<String>,
    wall_micros: u64,
    cache_hits: u64,
    check: bool,
    prove: bool,
) -> BatchSummary {
    let request_lines: Vec<&str> = input.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut summary = BatchSummary {
        requests: request_lines.len() as u64,
        ok: 0,
        errors: 0,
        cache_hits,
        truncated: 0,
        backend_bnb: 0,
        backend_sat: 0,
        certified: 0,
        certify_failures: 0,
        proved: 0,
        proof_failures: 0,
        wall_micros,
        search_nodes: 0,
        search_omega: 0,
        search_pruned: 0,
        identity_ok: true,
        responses,
    };

    for (line, request_line) in summary.responses.iter().zip(&request_lines) {
        let Ok(doc) = pipesched_json::parse(line) else {
            summary.errors += 1;
            continue;
        };
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            summary.errors += 1;
            continue;
        }
        summary.ok += 1;
        if doc.get("optimal").and_then(Json::as_bool) == Some(false) {
            summary.truncated += 1;
        }
        match doc.get("backend").and_then(Json::as_str) {
            Some("sat") => summary.backend_sat += 1,
            // Pre-portfolio servers send no backend field; everything
            // they answer is the B&B.
            _ => summary.backend_bnb += 1,
        }
        if check {
            if certify_response(request_line, &doc) {
                summary.certified += 1;
            } else {
                summary.certify_failures += 1;
                note_rejected_response(&doc);
            }
        }
        if prove && doc.get("optimal").and_then(Json::as_bool) == Some(true) {
            if prove_response(request_line, &doc) {
                summary.proved += 1;
            } else {
                summary.proof_failures += 1;
                note_rejected_response(&doc);
            }
        }
    }
    summary
}

/// Record a synthetic wide event for a response the certifier or proof
/// replay rejected. The rejection happens in the batch checker, not the
/// serve loop, so no in-flight event exists — but a certifier rejection is
/// exactly the kind of anomaly the flight recorder must freeze, wherever
/// it surfaces.
fn note_rejected_response(response: &Json) {
    if !flight::enabled() {
        return;
    }
    flight::begin(response.get("id").and_then(Json::as_i64).unwrap_or(-1));
    flight::note_outcome(flight::Outcome::CertReject);
    let micros = response
        .get("micros")
        .and_then(Json::as_i64)
        .map(|m| m.max(1) as u64)
        .unwrap_or(1);
    flight::commit(micros, 0);
}

/// Escalate an `optimal` response to a full proof replay: search the
/// request block again with certificate logging, run the certificate
/// through the independent checker, and require the certified μ to equal
/// the response's claimed μ.
fn prove_response(request_line: &str, response: &Json) -> bool {
    let Ok(req) = parse_request(request_line) else {
        return false;
    };
    let Some(claimed) = response
        .get("nops")
        .and_then(Json::as_i64)
        .and_then(|n| u32::try_from(n).ok())
    else {
        return false;
    };
    let dag = pipesched_ir::DepDag::build(&req.block);
    let ctx = pipesched_core::SchedContext::new(&req.block, &dag, &req.machine);
    let cfg = pipesched_core::SearchConfig {
        lambda: u64::MAX,
        ..pipesched_core::SearchConfig::default()
    };
    let (_, cert) = pipesched_core::prove(&ctx, &cfg);
    let check = pipesched_proof::check_certificate(&req.block, &req.machine, &cert);
    match check.verdict {
        pipesched_proof::ProofVerdict::OptimalCertified { nops } => nops == claimed,
        pipesched_proof::ProofVerdict::Rejected => false,
    }
}

/// Re-parse a request/response pair and certify the response schedule
/// against the request block with the independent certifier.
fn certify_response(request_line: &str, response: &Json) -> bool {
    let Ok(req) = parse_request(request_line) else {
        return false;
    };
    let Some(order_json) = response.get("order").and_then(Json::as_array) else {
        return false;
    };
    // Responses carry 1-based tuple numbers (matching the tuple text).
    let mut order = Vec::with_capacity(order_json.len());
    for v in order_json {
        match v.as_i64() {
            Some(k) if k >= 1 => order.push(TupleId(k as u32 - 1)),
            _ => return false,
        }
    }
    let n = req.block.len();
    let mut assignment: Vec<Option<PipelineId>> = vec![None; n];
    let pipes = response.get("pipes").and_then(Json::as_array);
    if let Some(pipes) = pipes {
        if pipes.len() != order.len() {
            return false;
        }
        for (pos, v) in pipes.iter().enumerate() {
            let t = order[pos];
            if t.index() >= n {
                return false;
            }
            assignment[t.index()] = match v {
                Json::Null => None,
                other => match other.as_i64() {
                    Some(p) if p >= 0 => Some(PipelineId(p as u32)),
                    _ => return false,
                },
            };
        }
    }
    let etas: Option<Vec<u32>> = response.get("etas").and_then(Json::as_array).map(|a| {
        a.iter()
            .filter_map(|v| v.as_i64().and_then(|e| u32::try_from(e).ok()))
            .collect()
    });
    let nops = response
        .get("nops")
        .and_then(Json::as_i64)
        .and_then(|n| u32::try_from(n).ok());
    let cert = certify(
        &req.block,
        &req.machine,
        Claim {
            order: &order,
            assignment: Some(&assignment),
            etas: etas.as_deref(),
            nops,
        },
    );
    cert.is_certified()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> ServiceEngine {
        ServiceEngine::new(EngineConfig::default(), 64, 4)
    }

    fn workload(repeats: usize) -> String {
        // Two shapes, renamed per repeat: ≥50% repeated block shapes.
        let mut text = String::new();
        for i in 0..repeats {
            text.push_str(&format!(
                "{{\"id\": {}, \"block\": \"1: Load #a{i}\\n2: Mul @1, @1\\n3: Store #b{i}, @2\", \"machine\": \"paper-simulation\"}}\n",
                2 * i
            ));
            text.push_str(&format!(
                "{{\"id\": {}, \"block\": \"1: Load #p{i}\\n2: Load #q{i}\\n3: Add @1, @2\\n4: Store #r{i}, @3\", \"machine\": \"paper-simulation\"}}\n",
                2 * i + 1
            ));
        }
        text
    }

    #[test]
    fn batch_replay_hits_and_certifies() {
        let eng = engine();
        let summary =
            run_batch(&eng, &workload(5), &ServeConfig { workers: 2 }, true, false).unwrap();
        assert_eq!(summary.requests, 10);
        assert_eq!(summary.ok, 10);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.certified, 10, "all responses certifier-clean");
        assert_eq!(summary.certify_failures, 0);
        // Two shapes, ten requests, two workers: each shape misses once,
        // plus at most one extra miss per shape when both workers are in
        // flight on it before either insert lands — so at least six hits
        // deterministically, usually eight.
        assert!(summary.cache_hits >= 6, "hits = {}", summary.cache_hits);
        let doc = summary.to_json();
        assert_eq!(doc.get("requests").and_then(Json::as_i64), Some(10));
        assert!(summary.throughput() > 0.0);
        // The misses searched; the batch reports that fleet-wide effort
        // and the aggregate identity still holds over it.
        assert!(summary.search_nodes > 0);
        assert!(summary.search_omega > 0);
        assert!(summary.identity_ok);
        assert_eq!(doc.get("identity_ok").and_then(Json::as_bool), Some(true));
        // A default engine answers everything with the B&B backend.
        assert_eq!(summary.backend_bnb, 10);
        assert_eq!(summary.backend_sat, 0);
        let backends = doc.get("backend_answers").unwrap();
        assert_eq!(backends.get("bnb").and_then(Json::as_i64), Some(10));
    }

    #[test]
    fn sat_engine_batches_certify_and_report_the_backend() {
        let eng = ServiceEngine::new(
            EngineConfig {
                backend: pipesched_core::Backend::Sat,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let summary =
            run_batch(&eng, &workload(3), &ServeConfig { workers: 2 }, true, false).unwrap();
        assert_eq!(summary.ok, 6);
        assert_eq!(summary.certified, 6, "SAT answers are certifier-clean");
        assert_eq!(summary.certify_failures, 0);
        // Every response records a concrete backend; the split depends on
        // which tier answered (list-tier answers stay B&B), so only the
        // total is stable.
        assert_eq!(summary.backend_bnb + summary.backend_sat, 6);
    }

    #[test]
    fn batch_counts_error_lines() {
        let eng = engine();
        let input = format!("{}garbage\n", workload(1));
        let summary = run_batch(&eng, &input, &ServeConfig::default(), false, false).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn batch_prove_escalates_optimal_responses() {
        let eng = ServiceEngine::new(
            EngineConfig {
                prove: true,
                ..EngineConfig::default()
            },
            64,
            4,
        );
        let summary = run_batch(&eng, &workload(3), &ServeConfig::default(), true, true).unwrap();
        assert_eq!(summary.ok, 6);
        assert_eq!(summary.proved, 6, "every optimal response replays");
        assert_eq!(summary.proof_failures, 0);
        // A proving engine attaches a certificate digest to every response.
        for line in &summary.responses {
            let doc = pipesched_json::parse(line).unwrap();
            let digest = doc.get("proof_digest").and_then(Json::as_str).unwrap();
            assert_eq!(digest.len(), 16, "digest is 16 hex digits: {digest}");
        }
        let doc = summary.to_json();
        assert_eq!(doc.get("proved").and_then(Json::as_i64), Some(6));
        assert_eq!(doc.get("proof_failures").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn certifier_rejection_freezes_a_flight_dump() {
        let _toggle = crate::flight_test_lock();
        flight::set_enabled(true);
        flight::reset();
        // A forged response claiming μ = 0 for a block whose real μ is
        // positive: the certifier must reject it, and the rejection must
        // surface as a frozen flight dump even though it happened in the
        // offline batch checker rather than the serve loop.
        let input = concat!(
            r#"{"id": 7, "block": "1: Load #x\n2: Mul @1, @1\n3: Store #y, @2", "#,
            r#""machine": "paper-simulation"}"#,
            "\n"
        );
        let forged =
            r#"{"id": 7, "ok": true, "order": [1, 2, 3], "nops": 0, "micros": 55}"#.to_string();
        let summary = summarize_responses(input, vec![forged], 1, 0, true, false);
        flight::set_enabled(false);
        assert_eq!(summary.certify_failures, 1);
        let dumps = flight::dumps();
        let dump = dumps
            .iter()
            .find(|d| d.anomaly == flight::Anomaly::CertReject.name())
            .expect("certifier rejection must freeze a flight dump");
        let trigger = dump.events.last().unwrap();
        assert_eq!(trigger.req, 7);
        assert_eq!(trigger.outcome, flight::Outcome::CertReject.name());
        assert!(trigger.verify());
    }
}
