//! Canonical-DAG cache keys.
//!
//! Two scheduling requests deserve the same cache entry when their blocks
//! are *schedule-isomorphic*: same dependence structure, same operation
//! kinds, same pipeline binding — regardless of variable names, immediate
//! values, or tuple numbering. The NOP-minimization problem (§4.2) sees
//! nothing else, so the cache key is built from exactly that data:
//!
//! 1. every node gets an initial label from its operation kind and the
//!    pipeline units the machine allows for it (the "latency class");
//! 2. labels are refined iteratively (Weisfeiler–Leman style): each round
//!    re-hashes a node's label with the sorted labels of its dependence
//!    predecessors and successors, tagged with the edge kind, until the
//!    label partition stabilizes;
//! 3. nodes are sorted into a canonical order by final label, and the key
//!    hashes the labels plus every edge rewritten into canonical indices,
//!    together with the machine fingerprint.
//!
//! Iterative refinement is not a complete isomorphism test, so a key match
//! is a *candidate* only: the cache validates every hit by translating the
//! stored schedule through the canonical permutation and re-verifying it on
//! the new block (see `engine::translate_hit`). A hash collision therefore
//! costs a wasted validation, never a wrong answer.
//!
//! All hashing is FNV-1a over 64 bits: unlike `std`'s `DefaultHasher`, its
//! output is stable across Rust releases, which the on-disk cache layer
//! relies on.

use pipesched_core::SchedContext;
use pipesched_ir::{DepKind, TupleId};
use pipesched_machine::Machine;

/// A canonical cache key: the refined structure hash, the block length,
/// and the target-machine fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanonKey {
    /// Refined structure hash of the canonicalized DAG.
    pub hash: u64,
    /// Number of instructions (cheap first-line discriminator).
    pub n: u32,
    /// Fingerprint of the machine description (timing + mapping, no names).
    pub machine_fp: u64,
}

/// A block's canonical form: the key plus the permutation linking canonical
/// indices back to the block's tuple ids. The permutation is what lets a
/// schedule cached for one block be replayed on an isomorphic one.
#[derive(Debug, Clone)]
pub struct CanonForm {
    /// The cache key.
    pub key: CanonKey,
    /// `perm[c]` is the tuple occupying canonical index `c`.
    pub perm: Vec<TupleId>,
}

impl CanonForm {
    /// Inverse permutation: tuple id → canonical index.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![0u32; self.perm.len()];
        for (c, t) in self.perm.iter().enumerate() {
            inv[t.index()] = c as u32;
        }
        inv
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a accumulator (build-stable, unlike `DefaultHasher`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.byte(b);
        }
        self.byte(0xFF); // terminator so "ab","c" ≠ "a","bc"
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint a machine description: pipeline timing rows in id order and
/// the op → pipeline-id mapping. Pipeline *identities* (not just latency
/// classes) are hashed because structural conflicts are per-unit; names are
/// excluded so cosmetic renames don't split the cache.
pub fn machine_fingerprint(machine: &Machine) -> u64 {
    let mut h = Fnv::new();
    h.u64(machine.pipeline_count() as u64);
    for p in machine.pipelines() {
        h.u64(u64::from(p.latency));
        h.u64(u64::from(p.enqueue));
    }
    for (op, pipes) in machine.mapping() {
        h.str(op.mnemonic());
        h.u64(pipes.len() as u64);
        for p in pipes {
            h.u64(p.index() as u64);
        }
    }
    h.finish()
}

fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv::new();
    for &p in parts {
        h.u64(p);
    }
    h.finish()
}

fn edge_tag(kind: DepKind) -> u64 {
    match kind {
        DepKind::Flow => 1,
        DepKind::Anti => 2,
        DepKind::Output => 3,
    }
}

/// Compute the canonical form of `ctx`'s block on `ctx`'s machine.
pub fn canonicalize(ctx: &SchedContext<'_>) -> CanonForm {
    let machine_fp = machine_fingerprint(ctx.machine);
    let n = ctx.len();
    if n == 0 {
        return CanonForm {
            key: CanonKey {
                hash: combine(&[machine_fp]),
                n: 0,
                machine_fp,
            },
            perm: Vec::new(),
        };
    }

    // Initial labels: op kind + the exact pipeline units allowed for it.
    // (σ is derived from `allowed`, so hashing `allowed` covers both.)
    let mut labels: Vec<u64> = (0..n)
        .map(|i| {
            let t = ctx.block.tuple(TupleId(i as u32));
            let mut h = Fnv::new();
            h.str(t.op.mnemonic());
            for p in &ctx.allowed[i] {
                h.u64(p.index() as u64);
            }
            h.finish()
        })
        .collect();

    // Iterative refinement until the partition stops splitting (bounded by
    // n rounds; in practice O(diameter) ≈ O(log n) rounds suffice).
    refine(ctx, &mut labels);

    // Refinement alone cannot separate automorphic substructures (five
    // parallel Const→Store chains leave one Const class and one Store
    // class, and sorting each class independently would scramble the
    // pairing). Individualize-and-refine: while some class has ties, give
    // one member a unique mark and re-refine, which propagates the split
    // to everything reachable. The *class* is chosen by minimal label
    // value — an isomorphism-invariant choice; the *member* by original
    // id, which is canonical exactly when the tied nodes are automorphic
    // (the common case; a miss here costs a cache miss, never a wrong
    // answer, thanks to validate-on-hit).
    for round in 0..n {
        let Some(tied_label) = smallest_tied_label(&labels) else {
            break;
        };
        let pick = (0..n).find(|&i| labels[i] == tied_label).unwrap();
        labels[pick] = combine(&[labels[pick], 0xD15C, round as u64]);
        refine(ctx, &mut labels);
    }

    // Canonical order: by the (now individually distinct, or at worst
    // orbit-consistent) refined labels, ties by original tuple id.
    let mut perm: Vec<TupleId> = (0..n as u32).map(TupleId).collect();
    perm.sort_by_key(|t| (labels[t.index()], t.0));
    let mut inv = vec![0u32; n];
    for (c, t) in perm.iter().enumerate() {
        inv[t.index()] = c as u32;
    }

    // Final hash: labels in canonical order + every edge in canonical
    // coordinates + the machine fingerprint.
    let mut h = Fnv::new();
    h.u64(n as u64);
    for &t in &perm {
        h.u64(labels[t.index()]);
    }
    let mut edges: Vec<(u32, u32, u64)> = ctx
        .dag
        .edges()
        .map(|e| (inv[e.from.index()], inv[e.to.index()], edge_tag(e.kind)))
        .collect();
    edges.sort_unstable();
    h.u64(edges.len() as u64);
    for (f, t, k) in edges {
        h.u64(u64::from(f));
        h.u64(u64::from(t));
        h.u64(k);
    }
    h.u64(machine_fp);

    CanonForm {
        key: CanonKey {
            hash: h.finish(),
            n: n as u32,
            machine_fp,
        },
        perm,
    }
}

fn count_distinct(labels: &[u64]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// The smallest label value shared by at least two nodes, if any.
fn smallest_tied_label(labels: &[u64]) -> Option<u64> {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
}

/// One Weisfeiler–Leman pass per round until the partition stops
/// splitting: each node's label is re-hashed with the sorted multisets of
/// its tagged predecessor and successor labels.
fn refine(ctx: &SchedContext<'_>, labels: &mut Vec<u64>) {
    let n = labels.len();
    let mut classes = count_distinct(labels);
    let mut scratch: Vec<u64> = Vec::with_capacity(8);
    for _ in 0..n {
        let mut next = vec![0u64; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let t = TupleId(i as u32);
            let mut h = Fnv::new();
            h.u64(labels[i]);
            scratch.clear();
            for e in ctx.dag.preds(t) {
                scratch.push(combine(&[edge_tag(e.kind), labels[e.from.index()]]));
            }
            scratch.sort_unstable();
            h.u64(scratch.len() as u64);
            for &s in &scratch {
                h.u64(s);
            }
            scratch.clear();
            for e in ctx.dag.succs(t) {
                scratch.push(combine(&[edge_tag(e.kind), labels[e.to.index()]]));
            }
            scratch.sort_unstable();
            h.u64(scratch.len() as u64);
            for &s in &scratch {
                h.u64(s);
            }
            next[i] = h.finish();
        }
        *labels = next;
        let next_classes = count_distinct(labels);
        if next_classes == classes {
            break;
        }
        classes = next_classes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn form_of(block: &pipesched_ir::BasicBlock, machine: &Machine) -> CanonForm {
        let dag = DepDag::build(block);
        let ctx = SchedContext::new(block, &dag, machine);
        canonicalize(&ctx)
    }

    fn chain_block(names: [&str; 3]) -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("c");
        let x = b.load(names[0]);
        let y = b.load(names[1]);
        let m = b.mul(x, y);
        b.store(names[2], m);
        b.finish().unwrap()
    }

    #[test]
    fn renamed_variables_share_a_key() {
        let machine = presets::paper_simulation();
        let a = form_of(&chain_block(["x", "y", "r"]), &machine);
        let b = form_of(&chain_block(["alpha", "beta", "out"]), &machine);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn different_structure_changes_the_key() {
        let machine = presets::paper_simulation();
        let a = form_of(&chain_block(["x", "y", "r"]), &machine);
        let mut bb = BlockBuilder::new("d");
        let x = bb.load("x");
        let y = bb.load("y");
        let m = bb.add(x, y); // add instead of mul
        bb.store("r", m);
        let b = form_of(&bb.finish().unwrap(), &machine);
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn machine_changes_the_key() {
        let block = chain_block(["x", "y", "r"]);
        let a = form_of(&block, &presets::paper_simulation());
        let b = form_of(&block, &presets::deep_pipeline());
        assert_ne!(a.key, b.key);
        assert_ne!(a.key.machine_fp, b.key.machine_fp);
    }

    #[test]
    fn fingerprint_ignores_names_but_not_timing() {
        let base = presets::paper_simulation();
        let mut renamed = base.clone();
        renamed.name = "different-name".into();
        assert_eq!(machine_fingerprint(&base), machine_fingerprint(&renamed));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let machine = presets::paper_simulation();
        let form = form_of(&chain_block(["x", "y", "r"]), &machine);
        let mut seen = vec![false; form.perm.len()];
        for t in &form.perm {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        let inv = form.inverse();
        for (c, t) in form.perm.iter().enumerate() {
            assert_eq!(inv[t.index()], c as u32);
        }
    }

    #[test]
    fn empty_block_canonicalizes() {
        let machine = presets::paper_simulation();
        let block = BlockBuilder::new("e").finish().unwrap();
        let form = form_of(&block, &machine);
        assert_eq!(form.key.n, 0);
        assert!(form.perm.is_empty());
    }
}
