//! Property tests for canonical-DAG cache keys.
//!
//! The cache is only sound if (a) schedule-isomorphic blocks — renamed
//! variables, reordered-but-dependence-equivalent statements — collapse to
//! one key, and (b) anything the NOP-minimization problem can *see* (an
//! edge, an operation kind, a latency class) splits the key. Both halves
//! are exercised here over randomized blocks from `pipesched-synth`, plus
//! the end-to-end regression: a validated cache hit must hand back a
//! schedule the independent certifier accepts on the *new* block.

use pipesched_core::SchedContext;
use pipesched_ir::{BasicBlock, DepDag, Op, Operand, TupleId};
use pipesched_machine::{presets, Machine};
use pipesched_service::canon::{canonicalize, machine_fingerprint, CanonForm};
use pipesched_service::{Budget, EngineConfig, ServiceEngine};
use pipesched_synth::generator::{generate_block, GeneratorConfig};
use proptest::proptest;
use rand::{Rng, SeedableRng};

fn form_of(block: &BasicBlock, machine: &Machine) -> CanonForm {
    let dag = DepDag::build(block);
    let ctx = SchedContext::new(block, &dag, machine);
    canonicalize(&ctx)
}

fn synth_block(seed: u64) -> BasicBlock {
    let statements = 4 + (seed % 13) as usize;
    generate_block(&GeneratorConfig::new(statements, 5, 3, seed))
}

/// Rebuild `block` with every variable renamed and the statements permuted
/// into a random topological order of the *dependence DAG* (not just the
/// operand references). Respecting all flow/anti/output edges keeps every
/// relative order the dependence analysis cares about, so the result is
/// schedule-isomorphic to the input by construction.
fn isomorphic_shuffle(block: &BasicBlock, seed: u64) -> BasicBlock {
    let dag = DepDag::build(block);
    let n = block.len();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut indegree: Vec<usize> = (0..n).map(|i| dag.preds(TupleId(i as u32)).len()).collect();
    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&i| indegree[i as usize] == 0)
        .collect();
    let mut topo: Vec<TupleId> = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let t = TupleId(ready.swap_remove(pick));
        topo.push(t);
        for e in dag.succs(t) {
            indegree[e.to.index()] -= 1;
            if indegree[e.to.index()] == 0 {
                ready.push(e.to.0);
            }
        }
    }
    assert_eq!(topo.len(), n, "dependence DAG must be acyclic");

    let mut renamed = BasicBlock::new(format!("{}-shuffled", block.name));
    let mut new_id = vec![TupleId(0); n];
    for (pos, &old) in topo.iter().enumerate() {
        let t = block.tuple(old);
        let mut map_operand = |o: Operand| match o {
            Operand::Tuple(r) => Operand::Tuple(new_id[r.index()]),
            Operand::Var(v) => {
                let name = block.symbols().name(v).unwrap();
                Operand::Var(renamed.intern(&format!("renamed_{name}_x")))
            }
            other => other,
        };
        let (a, b) = (map_operand(t.a), map_operand(t.b));
        new_id[old.index()] = renamed.push(t.op, a, b);
        debug_assert_eq!(new_id[old.index()].index(), pos);
    }
    renamed.verify().expect("shuffled block stays well-formed");
    renamed
}

/// Bump one pipeline's latency by one, keeping everything else identical.
fn bump_latency(machine: &Machine, which: usize) -> Machine {
    let mut b = Machine::builder(machine.name.clone());
    for (i, p) in machine.pipelines().iter().enumerate() {
        let latency = if i == which % machine.pipeline_count() {
            p.latency + 1
        } else {
            p.latency
        };
        b.pipeline(&p.function, latency, p.enqueue);
    }
    for (op, pipes) in machine.mapping() {
        b.map(*op, pipes);
    }
    b.build().unwrap()
}

proptest! {
    /// (a) Renamed + dependence-respecting reordered blocks share a key.
    #[test]
    fn isomorphic_blocks_share_a_key(seed in 0u64..500, shuffle_seed in 0u64..500) {
        let machine = presets::paper_simulation();
        let block = synth_block(seed);
        let twin = isomorphic_shuffle(&block, shuffle_seed);
        let a = form_of(&block, &machine);
        let b = form_of(&twin, &machine);
        assert_eq!(a.key, b.key, "isomorphic blocks must collide:\n{block}\nvs\n{twin}");
    }

    /// (b1) A single latency-class mutation changes the key.
    #[test]
    fn latency_mutation_changes_the_key(seed in 0u64..300, which in 0usize..8) {
        let machine = presets::paper_simulation();
        let block = synth_block(seed);
        let mutated = bump_latency(&machine, which);
        assert_ne!(machine_fingerprint(&machine), machine_fingerprint(&mutated));
        assert_ne!(form_of(&block, &machine).key, form_of(&block, &mutated).key);
    }

    /// (b2) A single op-kind mutation (one Add↔Mul flip) changes the key.
    #[test]
    fn op_kind_mutation_changes_the_key(seed in 0u64..300) {
        let machine = presets::paper_simulation();
        let block = synth_block(seed);
        let Some(pos) = block
            .tuples()
            .iter()
            .position(|t| matches!(t.op, Op::Add | Op::Mul))
        else {
            return Ok(()); // no mutable site in this sample
        };
        let mut mutated = BasicBlock::new(block.name.clone());
        for (i, t) in block.tuples().iter().enumerate() {
            let mut map_operand = |o: Operand| match o {
                Operand::Var(v) => {
                    Operand::Var(mutated.intern(block.symbols().name(v).unwrap()))
                }
                other => other,
            };
            let op = if i == pos {
                if t.op == Op::Add { Op::Mul } else { Op::Add }
            } else {
                t.op
            };
            let (a, b) = (map_operand(t.a), map_operand(t.b));
            mutated.push(op, a, b);
        }
        mutated.verify().unwrap();
        assert_ne!(form_of(&block, &machine).key, form_of(&mutated, &machine).key);
    }

    /// (b3) Rewiring a single flow edge to a producer of a different op
    /// kind changes the key.
    #[test]
    fn edge_mutation_changes_the_key(seed in 0u64..300, pick in 0usize..16) {
        let machine = presets::paper_simulation();
        let block = synth_block(seed);
        // Find a binary tuple with a rewirable operand: slot `a` holds
        // tuple `t`, slot `b` does not reference `t`, and some earlier
        // tuple `u` has a different op kind and is not already an operand.
        let mut site = None;
        'outer: for (i, tup) in block.tuples().iter().enumerate().skip(pick % 4) {
            let Operand::Tuple(t) = tup.a else { continue };
            if tup.b == Operand::Tuple(t) {
                continue; // both slots reference t; the edge would survive
            }
            for u in 0..i {
                let u = TupleId(u as u32);
                if u == t
                    || block.tuple(u).op == block.tuple(t).op
                    || tup.b == Operand::Tuple(u)
                    || block.tuple(u).op == Op::Store
                {
                    continue;
                }
                site = Some((i, u));
                break 'outer;
            }
        }
        let Some((pos, u)) = site else {
            return Ok(()); // nothing rewirable in this sample
        };
        let mut mutated = BasicBlock::new(block.name.clone());
        for (i, t) in block.tuples().iter().enumerate() {
            let mut map_operand = |o: Operand| match o {
                Operand::Var(v) => {
                    Operand::Var(mutated.intern(block.symbols().name(v).unwrap()))
                }
                other => other,
            };
            let a = if i == pos {
                Operand::Tuple(u)
            } else {
                map_operand(t.a)
            };
            let b = map_operand(t.b);
            mutated.push(t.op, a, b);
        }
        mutated.verify().unwrap();
        assert_ne!(
            form_of(&block, &machine).key,
            form_of(&mutated, &machine).key,
            "edge rewire {pos} -> @{u:?} must split the key:\n{block}\nvs\n{mutated}"
        );
    }
}

/// With no budget or deadline the service must reproduce the serial
/// branch-and-bound result bit for bit on the paper's running examples.
#[test]
fn paper_examples_bit_match_serial_bnb() {
    const FIG3: &str = "1: Const 15\n2: Store #b, @1\n3: Load #a\n4: Mul @1, @3\n5: Store #a, @4\n";
    for machine in [presets::paper_simulation(), presets::table2_example()] {
        let block = pipesched_ir::parse::parse_block("fig3", FIG3).unwrap();
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let reference =
            pipesched_core::search(&ctx, &pipesched_core::SearchConfig::with_lambda(u64::MAX));
        assert!(reference.optimal);

        let engine = ServiceEngine::new(EngineConfig::default(), 16, 2);
        let served = engine.answer(&block, &machine, Budget::unlimited());
        assert!(served.optimal, "machine {}", machine.name);
        assert_eq!(served.order, reference.order, "machine {}", machine.name);
        assert_eq!(served.assignment, reference.assignment);
        assert_eq!(served.etas, reference.etas);
        assert_eq!(served.nops, reference.nops);
    }
}

/// Regression: a cache hit replayed onto a *renamed, reordered* block must
/// pass the independent certifier on that new block — in release builds
/// too, where the engine's internal debug hook is compiled out.
#[test]
fn cache_hit_certifies_on_the_new_block() {
    let machine = presets::paper_simulation();
    let engine = ServiceEngine::new(EngineConfig::default(), 128, 4);
    let mut hits = 0u64;
    for seed in 0..20u64 {
        let block = synth_block(seed);
        let first = engine.answer(&block, &machine, Budget::unlimited());
        assert!(!first.cache_hit);
        let twin = isomorphic_shuffle(&block, seed.wrapping_mul(7919));
        let second = engine.answer(&twin, &machine, Budget::unlimited());
        assert!(second.cache_hit, "isomorphic twin must hit (seed {seed})");
        assert_eq!(second.nops, first.nops);
        let cert = pipesched_analyze::certify(
            &twin,
            &machine,
            pipesched_analyze::Claim {
                order: &second.order,
                assignment: Some(&second.assignment),
                etas: Some(&second.etas),
                nops: Some(second.nops),
            },
        );
        assert!(
            cert.is_certified(),
            "cache hit failed certification on the new block (seed {seed}):\n{}",
            cert.report
        );
        hits += 1;
    }
    assert_eq!(engine.cache().hits(), hits);
}
