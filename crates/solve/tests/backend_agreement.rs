//! The portfolio's core invariant, property-tested: SAT, serial B&B, and
//! parallel B&B must agree on the optimal NOP count of every block on
//! every machine, and every SAT outcome must survive the independent
//! audit (full certification + rebuilt-encoding model re-checks).

use proptest::prelude::*;

use pipesched_core::{parallel_search, search, ParallelConfig, SchedContext, SearchConfig};
use pipesched_machine::{presets, Machine};
use pipesched_solve::audit::{audit_outcome, cross_check};
use pipesched_solve::{race, solve_schedule, QueryResult, RaceConfig, SolveConfig};
use pipesched_synth::{generate_block, GeneratorConfig};

fn machines() -> Vec<Machine> {
    vec![
        presets::paper_simulation(),
        presets::deep_pipeline(),
        presets::functional_units(),
        presets::section2_example(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Three independent exact algorithms, one optimum.
    #[test]
    fn sat_bnb_and_parallel_agree(seed in 0u64..10_000, statements in 1usize..7,
                                  machine_sel in 0usize..4) {
        let block = generate_block(&GeneratorConfig::new(statements, 3, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);

        let bnb = search(&ctx, &SearchConfig::default());
        let par = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(u64::MAX),
            &ParallelConfig::with_threads(2),
        );
        let sat = solve_schedule(&ctx, &SolveConfig::default());

        prop_assert!(bnb.optimal && par.optimal && sat.optimal);
        prop_assert!(sat.encode_fault.is_none(), "{:?}", sat.encode_fault);
        prop_assert_eq!(bnb.nops, par.nops, "parallel B&B disagrees on\n{}", block);
        let agree = cross_check(&block, bnb.optimal, bnb.nops, sat.optimal, sat.nops);
        prop_assert!(!agree.has_errors(), "SAT disagrees with B&B on\n{}\n{:?}", block, agree);
        prop_assert_eq!(bnb.nops, sat.nops);

        // Every decoded schedule and the full query trail must audit clean.
        let report = audit_outcome(&block, machine, &sat);
        prop_assert!(!report.has_errors(), "audit rejected honest run on\n{}\n{:?}", block, report);

        // Optimality justification is always on record: either the answer
        // reached the global lower bound, or the last query is the
        // refuting UNSAT one NOP below it.
        if sat.nops > pipesched_core::global_lower_bound(&ctx) {
            let last = sat.queries.last().expect("non-bound optimum needs queries");
            prop_assert_eq!(&last.result, &QueryResult::Unsat);
            prop_assert_eq!(last.budget + 1, sat.nops);
        }
    }

    /// The race picks a provably-optimal winner and never disagrees.
    #[test]
    fn race_never_disagrees(seed in 0u64..10_000, statements in 1usize..7,
                            machine_sel in 0usize..4) {
        let block = generate_block(&GeneratorConfig::new(statements, 4, 2, seed));
        let dag = pipesched_ir::DepDag::build(&block);
        let machine = &machines()[machine_sel];
        let ctx = SchedContext::new(&block, &dag, machine);

        let out = race(&ctx, &RaceConfig::default());
        prop_assert!(!out.disagreement);
        prop_assert!(out.optimal());
        prop_assert_eq!(out.bnb.nops, out.sat.nops);
        prop_assert_eq!(out.nops(), out.bnb.nops);
        prop_assert_eq!(out.etas().iter().sum::<u32>(), out.nops());

        let report = audit_outcome(&block, machine, &out.sat);
        prop_assert!(!report.has_errors(), "{:?}", report);
    }
}
