//! Deterministic tamper tests: every way a SAT-backend outcome can lie
//! maps to a stable `A06xx` rejection from the independent audit.

use pipesched_analyze::DiagCode;
use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::{BasicBlock, DepDag};
use pipesched_machine::{presets, Machine};
use pipesched_solve::audit::{audit_outcome, cross_check};
use pipesched_solve::cdcl::{lit, SatLimits, SolveResult, Solver};
use pipesched_solve::encode::{issue_cycles, Encoding};
use pipesched_solve::{solve_schedule, QueryResult, SolveConfig, SolveOutcome};
use pipesched_synth::{generate_block, GeneratorConfig};

/// Scan the deterministic generator for a block whose honest SAT run both
/// improves the incumbent (≥ 1 SAT query with a model) and needs a final
/// UNSAT refutation (optimum above the global lower bound). All tamper
/// tests work on this one witness run.
fn interesting_run() -> (BasicBlock, Machine, SolveOutcome) {
    for machine in [presets::deep_pipeline(), presets::paper_simulation()] {
        for seed in 0..400u64 {
            let block = generate_block(&GeneratorConfig::new(4 + (seed % 5) as usize, 3, 2, seed));
            let dag = DepDag::build(&block);
            let ctx = SchedContext::new(&block, &dag, &machine);
            let out = solve_schedule(&ctx, &SolveConfig::default());
            let has_sat = out
                .queries
                .iter()
                .any(|q| matches!(q.result, QueryResult::Sat { .. }));
            let ends_unsat = matches!(
                out.queries.last().map(|q| &q.result),
                Some(&QueryResult::Unsat)
            );
            if out.optimal && !out.stats.proved_by_bound && has_sat && ends_unsat {
                return (block, machine, out);
            }
        }
    }
    panic!("no generator seed produced a run with both SAT and UNSAT queries");
}

fn codes(report: &pipesched_analyze::Report) -> Vec<DiagCode> {
    report.diagnostics().iter().map(|d| d.code).collect()
}

#[test]
fn honest_run_is_accepted() {
    let (block, machine, out) = interesting_run();
    let report = audit_outcome(&block, &machine, &out);
    assert!(!report.has_errors(), "{report:?}");
}

#[test]
fn corrupted_horizon_is_a0601() {
    let (block, machine, mut out) = interesting_run();
    out.queries[0].horizon += 1;
    let report = audit_outcome(&block, &machine, &out);
    assert!(codes(&report).contains(&DiagCode::SolveEncodingInconsistent));
}

#[test]
fn non_descending_budgets_are_a0601() {
    let (block, machine, mut out) = interesting_run();
    let dup = out.queries[0].clone();
    out.queries.insert(1, dup); // repeats the same budget: not descending
    let report = audit_outcome(&block, &machine, &out);
    assert!(codes(&report).contains(&DiagCode::SolveEncodingInconsistent));
}

#[test]
fn corrupted_model_cycles_are_a0602() {
    let (block, machine, mut out) = interesting_run();
    let q = out
        .queries
        .iter_mut()
        .find(|q| matches!(q.result, QueryResult::Sat { .. }))
        .unwrap();
    if let QueryResult::Sat { cycles } = &mut q.result {
        // Two tuples in one issue slot violates the single-stream clause.
        cycles[1] = cycles[0];
    }
    let report = audit_outcome(&block, &machine, &out);
    assert!(
        codes(&report).contains(&DiagCode::SolveModelInvalid),
        "{report:?}"
    );
}

#[test]
fn budget_missing_model_is_a0603() {
    let (block, machine, mut out) = interesting_run();
    // Replace a SAT query's model with the *initial* schedule's cycles:
    // a perfectly legal schedule, but one whose μ exceeds the query's
    // budget (the query was asked strictly below the incumbent).
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let initial_cycles = issue_cycles(&ctx, &out.initial_order);
    let q = out
        .queries
        .iter_mut()
        .find(|q| matches!(q.result, QueryResult::Sat { .. }))
        .unwrap();
    q.result = QueryResult::Sat {
        cycles: initial_cycles,
    };
    let report = audit_outcome(&block, &machine, &out);
    assert!(
        codes(&report).contains(&DiagCode::SolveBudgetMissed),
        "{report:?}"
    );
}

#[test]
fn truncated_unsat_query_is_a0604() {
    let (block, machine, mut out) = interesting_run();
    // Drop the refuting UNSAT while still claiming optimality.
    assert!(matches!(
        out.queries.pop().map(|q| q.result),
        Some(QueryResult::Unsat)
    ));
    let report = audit_outcome(&block, &machine, &out);
    assert!(
        codes(&report).contains(&DiagCode::SolveOptimalityUnproved),
        "{report:?}"
    );
}

#[test]
fn unsat_refuted_by_final_schedule_is_a0601() {
    let (block, machine, mut out) = interesting_run();
    // Forge an UNSAT at the final μ itself: the outcome's own schedule is
    // a witness that the query was satisfiable.
    let last = out.queries.last().unwrap().clone();
    out.queries.retain(|q| q.budget > out.nops);
    out.queries.push(pipesched_solve::QueryRecord {
        budget: out.nops,
        horizon: block.len() as u32 + out.nops,
        ..last
    });
    let report = audit_outcome(&block, &machine, &out);
    assert!(
        codes(&report).contains(&DiagCode::SolveEncodingInconsistent),
        "{report:?}"
    );
}

/// The "corrupt a learned clause" scenario end to end: a clause the
/// formula never implied flips a satisfiable query to UNSAT, the backend
/// dutifully reports a too-high "optimum", and the cross-check against
/// the branch-and-bound catches the disagreement as A0605.
#[test]
fn corrupt_clause_disagreement_is_a0605() {
    let (block, machine, honest) = interesting_run();
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let bnb = search(&ctx, &SearchConfig::default());
    assert!(bnb.optimal);
    assert_eq!(bnb.nops, honest.nops);

    // The query at the true optimum is honestly SAT…
    let enc = Encoding::build(&ctx, bnb.nops);
    let mut clean = Solver::new(enc.num_vars());
    assert!(enc.emit_into(&ctx, &mut clean));
    assert!(matches!(
        clean.solve(&SatLimits::default()),
        SolveResult::Sat(_)
    ));

    // …until a corrupt clause (forcing tuple 0 out of every issue slot —
    // something no sound learning step could derive) makes it "UNSAT".
    let mut corrupt = Solver::new(enc.num_vars());
    let mut consistent = enc.emit_into(&ctx, &mut corrupt);
    for c in 0..enc.horizon {
        if let Some(v) = enc.var(0, c) {
            consistent &= corrupt.add_clause(&[lit(v, true)]);
        }
    }
    let verdict = if consistent {
        corrupt.solve(&SatLimits::default())
    } else {
        SolveResult::Unsat
    };
    assert_eq!(
        verdict,
        SolveResult::Unsat,
        "corruption must flip the query"
    );

    // A backend built on the corrupted solver would claim μ = optimum + 1
    // is optimal. The portfolio cross-check refuses to let that stand.
    let report = cross_check(&block, bnb.optimal, bnb.nops, true, bnb.nops + 1);
    assert!(codes(&report).contains(&DiagCode::BackendDisagreement));
    // And agreement stays silent.
    let ok = cross_check(&block, bnb.optimal, bnb.nops, true, bnb.nops);
    assert!(!ok.has_errors());
}
