//! Independent audit of a finished SAT-backend run (stable `A06xx` codes).
//!
//! [`audit_outcome`] trusts nothing in the [`SolveOutcome`] it is handed:
//! the final schedule goes through the full `pipesched-analyze` certifier,
//! the encoding for every recorded query is rebuilt from the block and
//! machine description, every recorded model is re-checked clause by
//! clause and replayed through the timing engine, and an optimality claim
//! must be backed by either the global lower bound or an on-record UNSAT
//! query at one NOP below the answer. [`cross_check`] adds the portfolio
//! invariant: two backends that both claim a proven optimum must agree on
//! it.

use pipesched_analyze::{certify, Claim, DiagCode, Diagnostic, Report};
use pipesched_core::bounds::global_lower_bound;
use pipesched_core::timing::evaluate_schedule;
use pipesched_core::SchedContext;
use pipesched_ir::{BasicBlock, DepDag};
use pipesched_machine::Machine;

use crate::encode::Encoding;
use crate::{QueryResult, SolveOutcome};

/// Re-check a SAT-backend outcome from scratch. An empty-error report
/// means the schedule is certified *and* the query trail genuinely
/// justifies whatever the outcome claims.
pub fn audit_outcome(block: &BasicBlock, machine: &Machine, outcome: &SolveOutcome) -> Report {
    let mut report = Report::new(format!(
        "sat-backend audit of `{}` on `{}`",
        block.name, machine.name
    ));

    // The final schedule must survive full certification (A03xx codes).
    let cert = certify(
        block,
        machine,
        Claim {
            order: &outcome.order,
            assignment: Some(&outcome.assignment),
            etas: Some(&outcome.etas),
            nops: Some(outcome.nops),
        },
    );
    report.merge(cert.report);

    let dag = DepDag::build(block);
    let ctx = SchedContext::new(block, &dag, machine);
    let n = ctx.len();

    if let Some(fault) = &outcome.encode_fault {
        report.push(Diagnostic::new(
            DiagCode::SolveEncodingInconsistent,
            format!("run recorded an encoder fault: {fault}"),
        ));
    }

    // Query-trail shape: horizons must match `n + budget` and budgets must
    // strictly descend (each query is asked below the then-best schedule).
    let mut prev_budget: Option<u32> = None;
    for (i, q) in outcome.queries.iter().enumerate() {
        if q.horizon != n as u32 + q.budget {
            report.push(Diagnostic::new(
                DiagCode::SolveEncodingInconsistent,
                format!(
                    "query {i} records horizon {} for budget {} on {n} instructions \
                     (expected {})",
                    q.horizon,
                    q.budget,
                    n as u32 + q.budget
                ),
            ));
        }
        if prev_budget.is_some_and(|p| q.budget >= p) {
            report.push(Diagnostic::new(
                DiagCode::SolveEncodingInconsistent,
                format!("query {i} budget {} does not descend", q.budget),
            ));
        }
        prev_budget = Some(q.budget);
    }

    // Every recorded model must satisfy an independently rebuilt encoding
    // and replay within its query's budget.
    for (i, q) in outcome.queries.iter().enumerate() {
        let QueryResult::Sat { cycles } = &q.result else {
            continue;
        };
        let enc = Encoding::build(&ctx, q.budget);
        if let Err(e) = enc.check_cycles(&ctx, cycles) {
            report.push(Diagnostic::new(
                DiagCode::SolveModelInvalid,
                format!("query {i} (budget {}): {e}", q.budget),
            ));
        }
        let order = Encoding::order_of_cycles(cycles);
        if let Err(e) = pipesched_ir::analysis::verify_schedule(block, &dag, &order) {
            report.push(Diagnostic::new(
                DiagCode::SolveModelInvalid,
                format!(
                    "query {i} (budget {}): decoded order is illegal: {e}",
                    q.budget
                ),
            ));
            continue; // replaying an illegal order is meaningless
        }
        let (_, nops) = evaluate_schedule(&ctx, &order);
        if nops > q.budget {
            report.push(Diagnostic::new(
                DiagCode::SolveBudgetMissed,
                format!(
                    "query {i} claims a schedule with μ ≤ {} but its model replays to μ = {nops}",
                    q.budget
                ),
            ));
        }
    }

    // An optimality claim needs a proof: the global lower bound, or an
    // UNSAT query exactly one NOP below the answer.
    if outcome.optimal && outcome.nops > global_lower_bound(&ctx) {
        let refuted = outcome.nops > 0
            && outcome
                .queries
                .iter()
                .any(|q| q.result == QueryResult::Unsat && q.budget == outcome.nops - 1);
        if !refuted {
            report.push(Diagnostic::new(
                DiagCode::SolveOptimalityUnproved,
                format!(
                    "outcome claims μ = {} is optimal but no UNSAT query at budget {} is on record",
                    outcome.nops,
                    outcome.nops.saturating_sub(1)
                ),
            ));
        }
    }

    // A recorded UNSAT at or above the final μ is refuted by the final
    // schedule itself — the answer is a witness that the query was SAT.
    for (i, q) in outcome.queries.iter().enumerate() {
        if q.result == QueryResult::Unsat && q.budget >= outcome.nops {
            report.push(Diagnostic::new(
                DiagCode::SolveEncodingInconsistent,
                format!(
                    "query {i} claims UNSAT at budget {} but the final schedule has μ = {}",
                    q.budget, outcome.nops
                ),
            ));
        }
    }

    report
}

/// The portfolio invariant: two backends that both *prove* optimality on
/// the same block must agree on the optimal μ. Returns a report carrying
/// [`DiagCode::BackendDisagreement`] when they do not.
pub fn cross_check(
    block: &BasicBlock,
    bnb_optimal: bool,
    bnb_nops: u32,
    sat_optimal: bool,
    sat_nops: u32,
) -> Report {
    let mut report = Report::new(format!("backend cross-check of `{}`", block.name));
    if bnb_optimal && sat_optimal && bnb_nops != sat_nops {
        report.push(Diagnostic::new(
            DiagCode::BackendDisagreement,
            format!("branch-and-bound proves μ = {bnb_nops} optimal, SAT proves μ = {sat_nops}"),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_schedule, SolveConfig};
    use pipesched_ir::BlockBuilder;
    use pipesched_machine::presets;

    fn honest_outcome() -> (BasicBlock, Machine, SolveOutcome) {
        let mut b = BlockBuilder::new("audit");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        let block = b.finish().unwrap();
        let machine = presets::paper_simulation();
        let dag = DepDag::build(&block);
        let outcome = {
            let ctx = SchedContext::new(&block, &dag, &machine);
            solve_schedule(&ctx, &SolveConfig::default())
        };
        (block, machine, outcome)
    }

    #[test]
    fn honest_outcomes_audit_clean() {
        let (block, machine, outcome) = honest_outcome();
        let report = audit_outcome(&block, &machine, &outcome);
        assert!(!report.has_errors(), "clean run rejected: {report:?}");
    }

    #[test]
    fn agreement_cross_checks_clean() {
        let (block, _machine, outcome) = honest_outcome();
        let report = cross_check(&block, true, outcome.nops, true, outcome.nops);
        assert!(!report.has_errors());
    }
}
