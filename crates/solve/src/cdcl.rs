//! A zero-dependency CDCL SAT solver.
//!
//! Implements the standard conflict-driven clause-learning loop in the
//! repo's vendored-shim ethos (no external solver binary, no crates.io
//! dependency): two watched literals per clause, first-UIP conflict
//! analysis with non-chronological backjumping, VSIDS-style exponential
//! variable activities, phase saving, and Luby-sequence restarts. It is
//! deliberately small — the scheduling encodings it solves have at most a
//! few thousand variables — and favours being auditable over shaving
//! constants: decisions pick the max-activity unassigned variable by
//! linear scan instead of maintaining a heap.
//!
//! Literal convention: variable `v`'s positive literal is `2v`, its
//! negative literal `2v+1` (MiniSat's encoding).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: `var << 1 | sign` with sign 1 meaning negated.
pub type Lit = u32;

/// Build a literal from a variable and a sign (`negated = true` ⇒ ¬v).
#[inline]
pub fn lit(v: Var, negated: bool) -> Lit {
    (v << 1) | u32::from(negated)
}

/// The variable of a literal.
#[inline]
pub fn var_of(l: Lit) -> Var {
    l >> 1
}

/// True when the literal is negated.
#[inline]
pub fn is_neg(l: Lit) -> bool {
    l & 1 == 1
}

/// The complement of a literal.
#[inline]
pub fn negate(l: Lit) -> Lit {
    l ^ 1
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; the model gives one truth value per variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// Gave up: conflict budget, deadline, or external stop flag.
    Unknown,
}

/// Search counters for one `solve` call (cumulative across calls).
#[derive(Debug, Clone, Copy, Default)]
pub struct SatStats {
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Decision literals tried.
    pub decisions: u64,
    /// Literals propagated by unit propagation.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

/// Resource limits for a `solve` call.
#[derive(Debug, Clone, Default)]
pub struct SatLimits {
    /// Give up after this many conflicts (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Give up once this instant passes.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation: give up once this flag is set
    /// (checked every few hundred conflicts, like the deadline).
    pub stop: Option<Arc<AtomicBool>>,
}

const VAR_ACT_DECAY: f64 = 1.0 / 0.95;
const VAR_ACT_RESCALE: f64 = 1e100;
const RESTART_BASE: u64 = 64;
/// Conflicts between deadline / stop-flag polls.
const LIMIT_CHECK_INTERVAL: u64 = 256;

/// A CDCL solver instance over a fixed set of variables.
pub struct Solver {
    num_vars: usize,
    /// Clause arena: problem clauses first, learned clauses appended.
    clauses: Vec<Vec<Lit>>,
    /// `watches[l]` = indices of clauses currently watching literal `l`.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: `None` unassigned.
    assign: Vec<Option<bool>>,
    /// Decision level per variable (valid only while assigned).
    level: Vec<u32>,
    /// Antecedent clause per variable (`u32::MAX` ⇒ decision/none).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Root-level contradiction discovered while adding clauses.
    root_unsat: bool,
    /// Cumulative counters across `solve` calls on this instance.
    pub stats: SatStats,
}

const NO_REASON: u32 = u32::MAX;

impl Solver {
    /// Create a solver over `num_vars` variables, all initially free.
    pub fn new(num_vars: usize) -> Solver {
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            // Default phase `false`: in the time-indexed scheduling
            // encoding almost every x[t][c] is false in any model.
            phase: vec![false; num_vars],
            seen: vec![false; num_vars],
            root_unsat: false,
            stats: SatStats::default(),
        }
    }

    /// Number of variables this solver was created with.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of problem + learned clauses currently stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    #[inline]
    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[var_of(l) as usize].map(|v| v != is_neg(l))
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a problem clause. Must be called before `solve`; literals are
    /// deduplicated and tautologies dropped. Returns `false` when the
    /// clause makes the formula trivially unsatisfiable at the root.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.root_unsat {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!((var_of(l) as usize) < self.num_vars);
            if c.contains(&negate(l)) {
                return true; // tautology: always satisfied
            }
            // Root-level simplification against already-fixed literals.
            match self.value(l) {
                Some(true) => return true,
                Some(false) => continue,
                None => {
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.root_unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.root_unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0] as usize].push(idx);
                self.watches[c[1] as usize].push(idx);
                self.clauses.push(c);
                true
            }
        }
    }

    #[inline]
    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = var_of(l) as usize;
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(!is_neg(l));
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation with two watched literals. Returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = negate(p);
            // Clauses watching `false_lit` must find a new watch or fire.
            let mut watch_list = std::mem::take(&mut self.watches[false_lit as usize]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                let clause = &mut self.clauses[ci as usize];
                // Normalize: the false watch sits at position 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if self.assign[var_of(first) as usize].map(|v| v != is_neg(first)) == Some(true) {
                    i += 1; // clause already satisfied; keep watching
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..clause.len() {
                    let lk = clause[k];
                    if self.assign[var_of(lk) as usize].map(|v| v != is_neg(lk)) != Some(false) {
                        clause.swap(1, k);
                        self.watches[lk as usize].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: clause is unit or conflicting on `first`.
                if self.assign[var_of(first) as usize].is_none() {
                    self.enqueue(first, ci);
                    i += 1;
                } else {
                    // Conflict: restore the remaining watch list.
                    self.watches[false_lit as usize] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
            }
            self.watches[false_lit as usize] = watch_list;
        }
        None
    }

    #[inline]
    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > VAR_ACT_RESCALE {
            for act in &mut self.activity {
                *act /= VAR_ACT_RESCALE;
            }
            self.var_inc /= VAR_ACT_RESCALE;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![0]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let cur_level = self.decision_level();
        loop {
            let clause_len = self.clauses[confl as usize].len();
            let start = usize::from(p.is_some()); // skip the asserting slot
            for k in start..clause_len {
                let q = self.clauses[confl as usize][k];
                let v = var_of(q);
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    self.bump_var(v);
                    if self.level[v as usize] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[var_of(self.trail[idx]) as usize] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[var_of(pl) as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = negate(pl);
                break;
            }
            // Not the UIP: resolve with its antecedent. By construction a
            // non-UIP marked literal at the current level was propagated,
            // so it has a reason clause whose slot 0 is `pl`.
            confl = self.reason[var_of(pl) as usize];
            debug_assert_ne!(confl, NO_REASON);
            debug_assert_eq!(self.clauses[confl as usize][0], pl);
            p = Some(pl);
        }
        for &l in &learnt[1..] {
            self.seen[var_of(l) as usize] = false;
        }
        // Backjump to the second-highest level in the learned clause.
        let mut back = 0;
        let mut at = 1usize;
        for (k, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[var_of(l) as usize];
            if lv > back {
                back = lv;
                at = k;
            }
        }
        if learnt.len() > 1 {
            // Watch invariant: slot 1 holds a literal from the backjump
            // level so it is the last to become false.
            learnt.swap(1, at);
        }
        (learnt, back)
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = var_of(l) as usize;
                self.phase[v] = !is_neg(l);
                self.assign[v] = None;
                self.reason[v] = NO_REASON;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars {
            if self.assign[v].is_none() {
                let a = self.activity[v];
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((v as Var, a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Run the CDCL loop until SAT, UNSAT, or a limit fires.
    pub fn solve(&mut self, limits: &SatLimits) -> SolveResult {
        if self.root_unsat {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.root_unsat = true;
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_limit = RESTART_BASE * luby(self.stats.restarts + 1);
        let mut conflicts_since_restart = 0u64;
        let mut since_check = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                since_check += 1;
                if self.decision_level() == 0 {
                    self.root_unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, back) = self.analyze(confl);
                self.backtrack(back);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[learnt[0] as usize].push(idx);
                    self.watches[learnt[1] as usize].push(idx);
                    let asserting = learnt[0];
                    self.clauses.push(learnt);
                    self.enqueue(asserting, idx);
                }
                self.stats.learned += 1;
                self.var_inc *= VAR_ACT_DECAY;
                if since_check >= LIMIT_CHECK_INTERVAL {
                    since_check = 0;
                    if limits.deadline.is_some_and(|d| Instant::now() >= d)
                        || limits
                            .stop
                            .as_ref()
                            .is_some_and(|s| s.load(Ordering::Relaxed))
                    {
                        self.backtrack(0);
                        return SolveResult::Unknown;
                    }
                }
                if limits
                    .max_conflicts
                    .is_some_and(|m| self.stats.conflicts - start_conflicts >= m)
                {
                    self.backtrack(0);
                    return SolveResult::Unknown;
                }
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_limit = RESTART_BASE * luby(self.stats.restarts + 1);
                    self.backtrack(0);
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let model = self.assign.iter().map(|a| a.unwrap()).collect();
                        self.backtrack(0);
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit(v, !self.phase[v as usize]), NO_REASON);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(i: u64) -> u64 {
    let mut x = i - 1;
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
        clauses
            .iter()
            .all(|c| c.iter().any(|&l| model[var_of(l) as usize] != is_neg(l)))
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), w, "luby({})", i + 1);
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new(1);
        assert!(s.add_clause(&[lit(0, false)]));
        assert!(matches!(s.solve(&SatLimits::default()), SolveResult::Sat(m) if m[0]));

        let mut s = Solver::new(1);
        assert!(s.add_clause(&[lit(0, false)]));
        assert!(!s.add_clause(&[lit(0, true)]));
        assert_eq!(s.solve(&SatLimits::default()), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let v = |i: u32, j: u32| i * 2 + j;
        let mut s = Solver::new(6);
        for i in 0..3 {
            s.add_clause(&[lit(v(i, 0), false), lit(v(i, 1), false)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[lit(v(a, j), true), lit(v(b, j), true)]);
                }
            }
        }
        assert_eq!(s.solve(&SatLimits::default()), SolveResult::Unsat);
        assert!(s.stats.conflicts > 0);
    }

    #[test]
    fn random_3sat_models_check_out() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move |bound: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % bound
        };
        for round in 0..30 {
            let nvars = 12 + round % 5;
            let nclauses = 3 * nvars; // near the easy side of the threshold
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let l = lit(next(nvars), next(2) == 1);
                    if !c.contains(&l) && !c.contains(&negate(l)) {
                        c.push(l);
                    }
                }
                clauses.push(c);
            }
            let mut s = Solver::new(nvars as usize);
            let mut consistent = true;
            for c in &clauses {
                if !s.add_clause(c) {
                    consistent = false;
                    break;
                }
            }
            if !consistent {
                continue;
            }
            match s.solve(&SatLimits::default()) {
                SolveResult::Sat(model) => {
                    assert!(model_satisfies(&clauses, &model), "round {round}");
                }
                SolveResult::Unsat => {} // fine: trusted via the pigeonhole test
                SolveResult::Unknown => panic!("no limits were set"),
            }
        }
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let holes = 5u32;
        let pigeons = holes + 1;
        let v = |i: u32, j: u32| i * holes + j;
        let mut s = Solver::new((pigeons * holes) as usize);
        for i in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|j| lit(v(i, j), false)).collect();
            s.add_clause(&c);
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    s.add_clause(&[lit(v(a, j), true), lit(v(b, j), true)]);
                }
            }
        }
        let limits = SatLimits {
            max_conflicts: Some(5),
            ..SatLimits::default()
        };
        assert_eq!(s.solve(&limits), SolveResult::Unknown);
    }

    #[test]
    fn stop_flag_cancels() {
        let holes = 6u32;
        let pigeons = holes + 1;
        let v = |i: u32, j: u32| i * holes + j;
        let mut s = Solver::new((pigeons * holes) as usize);
        for i in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|j| lit(v(i, j), false)).collect();
            s.add_clause(&c);
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    s.add_clause(&[lit(v(a, j), true), lit(v(b, j), true)]);
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(true)); // pre-set: cancel asap
        let limits = SatLimits {
            stop: Some(stop),
            ..SatLimits::default()
        };
        assert_eq!(s.solve(&limits), SolveResult::Unknown);
    }
}
