//! The backend portfolio: race branch-and-bound against SAT on one block.
//!
//! Both backends start from the same list-schedule incumbent and run under
//! a shared wall-clock deadline, each on its own thread. The winner is the
//! first backend to produce a *provably optimal* answer; when only one
//! proves optimality it wins regardless of speed, and when neither does
//! the better μ wins (ties go to the branch-and-bound, the paper's
//! algorithm). Every race cross-checks: if both backends prove optimality
//! with different μ, the outcome is flagged as a disagreement — one of the
//! two proofs is wrong, and callers treat it as a hard failure
//! ([`crate::audit::cross_check`] turns it into `A0605`).
//!
//! Cancellation is asymmetric by design: the SAT side polls a cooperative
//! stop flag (set when the branch-and-bound finishes first with a proof),
//! while the branch-and-bound is bounded only by its λ budget and the
//! shared deadline — its search loop has no injection point for an
//! external flag, and adding one would thread a lifetime through every
//! search signature. With `cancel_loser` off (the CI race gate), both
//! backends always run to completion so the cross-check is meaningful on
//! every block.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pipesched_core::{search, Backend, SchedContext, SearchConfig, SearchOutcome};

use crate::{solve_schedule, SolveConfig, SolveOutcome};

/// Knobs for one [`race`] call.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// λ budget for the branch-and-bound side.
    pub lambda: u64,
    /// Conflict budget for the SAT side (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Shared wall-clock deadline for both sides.
    pub deadline: Option<Instant>,
    /// Cancel the SAT side as soon as the branch-and-bound proves
    /// optimality. Leave off to always run both to completion (full
    /// cross-certification, e.g. in CI gates); turn on when latency
    /// matters more (the service portfolio tier).
    pub cancel_loser: bool,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            lambda: SearchConfig::default().lambda,
            max_conflicts: None,
            deadline: None,
            cancel_loser: false,
        }
    }
}

/// The result of racing both backends on one block.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Which backend's answer was taken.
    pub winner: Backend,
    /// The full branch-and-bound outcome.
    pub bnb: SearchOutcome,
    /// The full SAT outcome.
    pub sat: SolveOutcome,
    /// Wall-clock of the branch-and-bound side, in microseconds.
    pub bnb_micros: u64,
    /// Wall-clock of the SAT side, in microseconds.
    pub sat_micros: u64,
    /// Both backends proved optimality and their μ differ — a hard
    /// failure; `order`/`nops` still carry the branch-and-bound answer so
    /// callers can report before aborting.
    pub disagreement: bool,
}

impl RaceOutcome {
    /// The winning backend's schedule order.
    pub fn order(&self) -> &[pipesched_ir::TupleId] {
        match self.winner {
            Backend::Sat => &self.sat.order,
            _ => &self.bnb.order,
        }
    }

    /// The winning backend's η vector.
    pub fn etas(&self) -> &[u32] {
        match self.winner {
            Backend::Sat => &self.sat.etas,
            _ => &self.bnb.etas,
        }
    }

    /// The winning backend's μ.
    pub fn nops(&self) -> u32 {
        match self.winner {
            Backend::Sat => self.sat.nops,
            _ => self.bnb.nops,
        }
    }

    /// True when the winning answer is provably optimal.
    pub fn optimal(&self) -> bool {
        match self.winner {
            Backend::Sat => self.sat.optimal,
            _ => self.bnb.optimal,
        }
    }
}

/// Run both exact backends on `ctx` and pick a winner (see module docs).
pub fn race(ctx: &SchedContext<'_>, cfg: &RaceConfig) -> RaceOutcome {
    let stop = Arc::new(AtomicBool::new(false));
    let sat_cfg = SolveConfig {
        max_conflicts: cfg.max_conflicts,
        deadline: cfg.deadline,
        stop: cfg.cancel_loser.then(|| Arc::clone(&stop)),
    };
    let bnb_cfg = SearchConfig {
        lambda: cfg.lambda,
        deadline: cfg.deadline,
        ..SearchConfig::default()
    };

    let start = Instant::now();
    let (bnb, bnb_micros, sat, sat_micros) = std::thread::scope(|scope| {
        let sat_handle = scope.spawn(|| {
            let t0 = Instant::now();
            let out = solve_schedule(ctx, &sat_cfg);
            (out, t0.elapsed().as_micros() as u64)
        });
        let t0 = Instant::now();
        let bnb = search(ctx, &bnb_cfg);
        let bnb_micros = t0.elapsed().as_micros() as u64;
        if cfg.cancel_loser && bnb.optimal {
            // relaxed-ok: pure cancellation flag with no payload — the
            // SAT side merely aborts when it observes the flag; it reads
            // nothing this store would need to publish.
            stop.store(true, Ordering::Relaxed);
        }
        let (sat, sat_micros) = sat_handle.join().expect("SAT backend thread panicked");
        (bnb, bnb_micros, sat, sat_micros)
    });
    let _ = start; // spans are the caller's concern; only per-side times matter

    let disagreement = bnb.optimal && sat.optimal && bnb.nops != sat.nops;
    let winner = if disagreement {
        Backend::Bnb // flagged; callers abort on `disagreement` anyway
    } else {
        match (bnb.optimal, sat.optimal) {
            (true, true) => {
                if sat_micros < bnb_micros {
                    Backend::Sat
                } else {
                    Backend::Bnb
                }
            }
            (true, false) => Backend::Bnb,
            (false, true) => Backend::Sat,
            (false, false) => {
                if sat.nops < bnb.nops {
                    Backend::Sat
                } else {
                    Backend::Bnb
                }
            }
        }
    };

    RaceOutcome {
        winner,
        bnb,
        sat,
        bnb_micros,
        sat_micros,
        disagreement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    #[test]
    fn race_agrees_and_certifies() {
        let mut b = BlockBuilder::new("race");
        let x = b.load("x");
        let y = b.load("y");
        let z = b.load("z");
        let m = b.mul(x, y);
        let a = b.add(m, z);
        b.store("r", a);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let out = race(&ctx, &RaceConfig::default());
        assert!(!out.disagreement);
        assert!(out.bnb.optimal && out.sat.optimal);
        assert_eq!(out.bnb.nops, out.sat.nops);
        assert!(out.optimal());
        assert_eq!(out.nops(), out.bnb.nops);

        let report = crate::audit::audit_outcome(&block, &machine, &out.sat);
        assert!(!report.has_errors(), "{report:?}");
    }

    #[test]
    fn cancel_loser_still_returns_an_answer() {
        let mut b = BlockBuilder::new("cancel");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);

        let cfg = RaceConfig {
            cancel_loser: true,
            ..RaceConfig::default()
        };
        let out = race(&ctx, &cfg);
        assert!(!out.disagreement);
        assert!(out.optimal());
        // The winner's schedule is a permutation of the block.
        assert_eq!(out.order().len(), block.len());
    }
}
