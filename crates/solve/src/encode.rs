//! Time-indexed SAT encoding of the scheduling problem.
//!
//! The feasibility question "does a schedule with μ ≤ N exist?" is encoded
//! over boolean variables `x[t][c]` — "tuple `t` issues at cycle `c`". A
//! schedule of an `n`-instruction block with μ NOPs issues its last
//! instruction at cycle `n − 1 + μ` (every η is the gap before one issue
//! slot), so μ ≤ N is exactly "every instruction issues within the horizon
//! `[0, n − 1 + N]`". The clauses are:
//!
//! * **exactly-one cycle per tuple** — at-least-one over the tuple's cycle
//!   window plus pairwise at-most-one;
//! * **at most one issue per cycle** — the single issue stream, pairwise
//!   over tuples whose windows share the cycle;
//! * **dependences** — for a dependence δ→ζ with delay `d` (the producer's
//!   pipeline latency for flow dependences, 1 for anti/output or σ(δ)=∅),
//!   `x[ζ][c] → ∨ x[δ][c′]` over the producer cycles `c′ ≤ c − d`;
//! * **pipeline conflicts** — two operations on the same pipeline `p` with
//!   enqueue time `q` must issue at least `q` cycles apart, as binary
//!   no-good clauses over cycle pairs closer than `q`.
//!
//! Because the enqueue interval is uniform per pipeline, pairwise spacing
//! is *equivalent* to the engine's `last_in_pipe + enqueue` rule, and the
//! constraints are monotone: replaying the decoded order greedily through
//! [`TimingEngine`] gives issue cycles pointwise ≤ the SAT-assigned ones,
//! so the replayed μ never exceeds the query budget (soundness), while any
//! real schedule's engine cycles satisfy every clause (completeness). An
//! UNSAT answer at budget N therefore *proves* μ > N.
//!
//! Cycle windows are tightened per tuple with exact head/tail chain bounds
//! (longest dependence path to and from the tuple), which both shrinks the
//! variable count and lets impossible budgets fail without search.

use pipesched_core::timing::TimingEngine;
use pipesched_core::SchedContext;
use pipesched_ir::TupleId;

use crate::cdcl::{lit, Lit, Solver, Var};

/// A built encoding: the variable layout for one `(block, budget)` query.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// Instruction count.
    pub n: usize,
    /// The NOP budget N this query asks about (μ ≤ N).
    pub budget: u32,
    /// Number of cycles in the window `[0, n − 1 + N]`.
    pub horizon: u32,
    /// True when some tuple's cycle window is empty: the chain bounds
    /// alone refute the budget and no solver call is needed.
    pub trivially_unsat: bool,
    /// Inclusive cycle window per tuple.
    win_lo: Vec<u32>,
    win_hi: Vec<u32>,
    /// First variable id per tuple (windows are laid out contiguously).
    var_base: Vec<u32>,
    /// Reverse map: variable → (tuple, cycle).
    var_info: Vec<(u32, u32)>,
}

/// Dependence delay of producer `from` as the timing engine charges it.
fn producer_delay(ctx: &SchedContext<'_>, from: u32, flow: bool) -> u32 {
    if flow {
        match ctx.sigma[from as usize] {
            Some(p) => ctx.latency(p),
            None => 1,
        }
    } else {
        1
    }
}

impl Encoding {
    /// Lay out variables for the query "μ ≤ budget" on `ctx`'s block.
    pub fn build(ctx: &SchedContext<'_>, budget: u32) -> Encoding {
        let n = ctx.len();
        let horizon = n as u32 + budget;
        if n == 0 {
            return Encoding {
                n,
                budget,
                horizon,
                trivially_unsat: false,
                win_lo: Vec::new(),
                win_hi: Vec::new(),
                var_base: Vec::new(),
                var_info: Vec::new(),
            };
        }
        // Exact chain bounds. Tuple ids are source positions and DAG edges
        // always point forward, so one pass each way suffices.
        let mut head = vec![0u32; n];
        for t in 0..n {
            for dep in &ctx.preds[t] {
                let d = producer_delay(ctx, dep.from, dep.flow);
                head[t] = head[t].max(head[dep.from as usize] + d);
            }
        }
        let mut tail = vec![0u32; n];
        for t in (0..n).rev() {
            for e in ctx.dag.succs(TupleId(t as u32)) {
                let d = producer_delay(ctx, t as u32, e.kind == pipesched_ir::DepKind::Flow);
                tail[t] = tail[t].max(d + tail[e.to.index()]);
            }
        }

        let mut win_lo = vec![0u32; n];
        let mut win_hi = vec![0u32; n];
        let mut var_base = vec![0u32; n];
        let mut var_info = Vec::new();
        let mut trivially_unsat = false;
        let mut next_var = 0u32;
        for t in 0..n {
            let lo = head[t];
            let hi_limit = horizon - 1; // horizon ≥ n ≥ 1 here
            if lo + tail[t] > hi_limit {
                trivially_unsat = true;
            }
            let hi = hi_limit.saturating_sub(tail[t]).max(lo);
            win_lo[t] = lo;
            win_hi[t] = hi;
            var_base[t] = next_var;
            for c in lo..=hi {
                var_info.push((t as u32, c));
                next_var += 1;
            }
        }

        Encoding {
            n,
            budget,
            horizon,
            trivially_unsat,
            win_lo,
            win_hi,
            var_base,
            var_info,
        }
    }

    /// Total variable count.
    pub fn num_vars(&self) -> usize {
        self.var_info.len()
    }

    /// The variable for "tuple `t` issues at cycle `c`", if `c` is inside
    /// `t`'s window.
    pub fn var(&self, t: usize, c: u32) -> Option<Var> {
        (self.win_lo[t]..=self.win_hi[t])
            .contains(&c)
            .then(|| self.var_base[t] + (c - self.win_lo[t]))
    }

    /// Generate every clause of the encoding. Deterministic; used both to
    /// feed the solver and by the independent audit to re-check models.
    pub fn clauses(&self, ctx: &SchedContext<'_>) -> Vec<Vec<Lit>> {
        let n = self.n;
        let mut out: Vec<Vec<Lit>> = Vec::new();
        let pos = |t: usize, c: u32| lit(self.var(t, c).unwrap(), false);
        let neg = |t: usize, c: u32| lit(self.var(t, c).unwrap(), true);

        // Exactly one issue cycle per tuple.
        for t in 0..n {
            out.push(
                (self.win_lo[t]..=self.win_hi[t])
                    .map(|c| pos(t, c))
                    .collect(),
            );
            for c1 in self.win_lo[t]..=self.win_hi[t] {
                for c2 in (c1 + 1)..=self.win_hi[t] {
                    out.push(vec![neg(t, c1), neg(t, c2)]);
                }
            }
        }

        // Single issue stream: at most one tuple per cycle.
        for a in 0..n {
            for b in (a + 1)..n {
                let lo = self.win_lo[a].max(self.win_lo[b]);
                let hi = self.win_hi[a].min(self.win_hi[b]);
                for c in lo..=hi {
                    out.push(vec![neg(a, c), neg(b, c)]);
                }
            }
        }

        // Dependences: consumer at c needs the producer at least `delay`
        // cycles earlier.
        for t in 0..n {
            for dep in &ctx.preds[t] {
                let from = dep.from as usize;
                let d = producer_delay(ctx, dep.from, dep.flow);
                for c in self.win_lo[t]..=self.win_hi[t] {
                    let mut clause = vec![neg(t, c)];
                    let latest = c.checked_sub(d);
                    if let Some(latest) = latest {
                        for cp in self.win_lo[from]..=self.win_hi[from].min(latest) {
                            clause.push(pos(from, cp));
                        }
                    }
                    // With no possible producer cycle the clause is the
                    // unit ¬x[t][c].
                    out.push(clause);
                }
            }
        }

        // Pipeline conflicts: same-unit operations issue ≥ enqueue apart.
        for a in 0..n {
            let Some(p) = ctx.sigma[a] else { continue };
            let q = ctx.enqueue(p);
            if q < 2 {
                continue; // spacing 1 ⇐ distinct cycles (single stream)
            }
            for b in (a + 1)..n {
                if ctx.sigma[b] != Some(p) {
                    continue;
                }
                for ca in self.win_lo[a]..=self.win_hi[a] {
                    let lo = ca.saturating_sub(q - 1).max(self.win_lo[b]);
                    let hi = (ca + q - 1).min(self.win_hi[b]);
                    for cb in lo..=hi {
                        if cb == ca {
                            continue; // equality covered by the stream AMO
                        }
                        out.push(vec![neg(a, ca), neg(b, cb)]);
                    }
                }
            }
        }

        out
    }

    /// Load the encoding into a fresh solver. Returns `false` when root
    /// simplification already refutes the query.
    pub fn emit_into(&self, ctx: &SchedContext<'_>, solver: &mut Solver) -> bool {
        for clause in self.clauses(ctx) {
            if !solver.add_clause(&clause) {
                return false;
            }
        }
        true
    }

    /// Extract the issue cycle of every tuple from a model. Fails when the
    /// model does not assign exactly one cycle per tuple.
    pub fn decode(&self, model: &[bool]) -> Result<Vec<u32>, String> {
        if model.len() != self.num_vars() {
            return Err(format!(
                "model has {} vars, encoding has {}",
                model.len(),
                self.num_vars()
            ));
        }
        let mut cycles = vec![None; self.n];
        for (v, &val) in model.iter().enumerate() {
            if !val {
                continue;
            }
            let (t, c) = self.var_info[v];
            if let Some(prev) = cycles[t as usize] {
                return Err(format!("tuple {t} issues at both cycle {prev} and {c}"));
            }
            cycles[t as usize] = Some(c);
        }
        cycles
            .iter()
            .enumerate()
            .map(|(t, c)| c.ok_or_else(|| format!("tuple {t} has no issue cycle")))
            .collect()
    }

    /// Semantic re-check used by the audit and the encoder self-test: do
    /// these per-tuple issue cycles satisfy every clause of this encoding?
    pub fn check_cycles(&self, ctx: &SchedContext<'_>, cycles: &[u32]) -> Result<(), String> {
        if cycles.len() != self.n {
            return Err(format!(
                "cycle vector has {} entries for {} tuples",
                cycles.len(),
                self.n
            ));
        }
        for (t, &c) in cycles.iter().enumerate() {
            if !(self.win_lo[t]..=self.win_hi[t]).contains(&c) {
                return Err(format!(
                    "tuple {t} at cycle {c} is outside its window [{}, {}]",
                    self.win_lo[t], self.win_hi[t]
                ));
            }
        }
        for (i, clause) in self.clauses(ctx).iter().enumerate() {
            let satisfied = clause.iter().any(|&l| {
                let (t, c) = self.var_info[(l >> 1) as usize];
                (cycles[t as usize] == c) != crate::cdcl::is_neg(l)
            });
            if !satisfied {
                return Err(format!("clause {i} of {} is violated", self.budget));
            }
        }
        Ok(())
    }

    /// Turn per-tuple issue cycles into a schedule order.
    pub fn order_of_cycles(cycles: &[u32]) -> Vec<TupleId> {
        let mut order: Vec<TupleId> = (0..cycles.len() as u32).map(TupleId).collect();
        order.sort_by_key(|t| cycles[t.index()]);
        order
    }
}

/// Issue cycle per tuple of `order` replayed from a cold boundary — the
/// engine-side twin of a decoded model, used by the encoder self-check.
pub fn issue_cycles(ctx: &SchedContext<'_>, order: &[TupleId]) -> Vec<u32> {
    let mut engine = TimingEngine::new(ctx);
    for &t in order {
        engine.push_default(t);
    }
    (0..ctx.len())
        .map(|t| engine.issue_time(TupleId(t as u32)).unwrap_or(0) as u32)
        .collect()
}

#[cfg(test)]
impl Encoding {
    fn win_lo_of(&self, t: usize) -> u32 {
        self.win_lo[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::{SatLimits, SolveResult};
    use pipesched_core::timing::evaluate_schedule;
    use pipesched_core::{search, SearchConfig};
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn dotproduct_like() -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("enc");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(m, x);
        b.store("r", a);
        b.finish().unwrap()
    }

    #[test]
    fn incumbent_satisfies_its_own_encoding() {
        let block = dotproduct_like();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let order: Vec<TupleId> = block.ids().collect();
        let (_, nops) = evaluate_schedule(&ctx, &order);
        let enc = Encoding::build(&ctx, nops);
        assert!(!enc.trivially_unsat);
        let cycles = issue_cycles(&ctx, &order);
        enc.check_cycles(&ctx, &cycles).unwrap();
    }

    #[test]
    fn query_at_optimum_is_sat_and_below_is_unsat() {
        let block = dotproduct_like();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let best = search(&ctx, &SearchConfig::default());
        assert!(best.optimal);

        // μ ≤ optimum must be SAT and decode to a schedule of that μ.
        let enc = Encoding::build(&ctx, best.nops);
        let mut solver = Solver::new(enc.num_vars());
        assert!(enc.emit_into(&ctx, &mut solver));
        match solver.solve(&SatLimits::default()) {
            SolveResult::Sat(model) => {
                let cycles = enc.decode(&model).unwrap();
                enc.check_cycles(&ctx, &cycles).unwrap();
                let order = Encoding::order_of_cycles(&cycles);
                let (_, nops) = evaluate_schedule(&ctx, &order);
                assert!(
                    nops <= best.nops,
                    "replayed μ {nops} > budget {}",
                    best.nops
                );
            }
            other => panic!("expected SAT at the optimum, got {other:?}"),
        }

        // μ ≤ optimum − 1 must be UNSAT (the independent optimality proof).
        if best.nops > 0 {
            let enc = Encoding::build(&ctx, best.nops - 1);
            if !enc.trivially_unsat {
                let mut solver = Solver::new(enc.num_vars());
                if enc.emit_into(&ctx, &mut solver) {
                    assert_eq!(solver.solve(&SatLimits::default()), SolveResult::Unsat);
                }
            }
        }
    }

    #[test]
    fn decode_rejects_double_and_missing_assignments() {
        let block = dotproduct_like();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let enc = Encoding::build(&ctx, 10);
        let mut model = vec![false; enc.num_vars()];
        assert!(enc.decode(&model).is_err(), "all-false has no cycles");
        model[enc.var(0, enc.win_lo_of(0)).unwrap() as usize] = true;
        model[enc.var(0, enc.win_lo_of(0) + 1).unwrap() as usize] = true;
        assert!(enc.decode(&model).is_err(), "double assignment rejected");
    }
}
