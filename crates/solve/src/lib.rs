#![warn(missing_docs)]

//! A SAT backend portfolio for the scheduler (ROADMAP item 2).
//!
//! The branch-and-bound in `pipesched-core` is one way to prove a schedule
//! optimal; this crate adds a second, *independent* one built from two
//! layers:
//!
//! * [`cdcl`] — a zero-dependency CDCL SAT solver (watched literals,
//!   first-UIP clause learning, VSIDS-style activities, Luby restarts);
//! * [`encode`] — a time-indexed encoding of "does a schedule with
//!   μ ≤ N exist?" over the existing [`SchedContext`]/`DepDag`.
//!
//! [`solve_schedule`] answers the optimization problem with descending
//! feasibility queries seeded by the shared list-schedule incumbent: each
//! SAT answer decodes to a strictly better schedule (replayed through the
//! real timing engine, never trusted from the model), and the final UNSAT
//! at one NOP below the best schedule *is* the optimality proof —
//! derived from clause-level reasoning that shares no code with the
//! branch-and-bound's bound arithmetic.
//!
//! Cross-certification is the point: [`audit::audit_outcome`] re-checks a
//! finished outcome from scratch (stable `A06xx` codes), and
//! [`portfolio::race`] runs both backends on one block and treats a
//! disagreement between their proven optima as a hard failure
//! ([`DiagCode::BackendDisagreement`]).
//!
//! [`DiagCode::BackendDisagreement`]: pipesched_analyze::DiagCode::BackendDisagreement

pub mod audit;
pub mod cdcl;
pub mod encode;
pub mod portfolio;

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use pipesched_core::bnb::InitialHeuristic;
use pipesched_core::seed::seed_incumbent;
use pipesched_core::timing::{evaluate_schedule, BoundaryState};
use pipesched_core::SchedContext;
use pipesched_ir::TupleId;
use pipesched_machine::PipelineId;

use cdcl::{SatLimits, SolveResult, Solver};
use encode::Encoding;

pub use audit::{audit_outcome, cross_check};
pub use pipesched_core::Backend;
pub use portfolio::{race, RaceConfig, RaceOutcome};

/// Resource limits for one [`solve_schedule`] call (all queries share
/// them).
#[derive(Debug, Clone, Default)]
pub struct SolveConfig {
    /// Total conflict budget across all queries (`None` = unlimited) —
    /// the SAT analogue of the branch-and-bound's λ.
    pub max_conflicts: Option<u64>,
    /// Anytime wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag (used by the portfolio race).
    pub stop: Option<Arc<AtomicBool>>,
}

/// Aggregate solver counters for one [`solve_schedule`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Conflicts analyzed, across all queries.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Feasibility queries answered SAT.
    pub queries_sat: u32,
    /// Feasibility queries answered UNSAT (including window refutations).
    pub queries_unsat: u32,
    /// Queries abandoned on a limit.
    pub queries_unknown: u32,
    /// The incumbent already matched the global lower bound; no queries
    /// were needed.
    pub proved_by_bound: bool,
    /// A limit fired before optimality was established.
    pub truncated: bool,
    /// The wall-clock deadline (or stop flag) fired.
    pub deadline_hit: bool,
}

/// The answer to one feasibility query "μ ≤ budget?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Satisfiable: the decoded issue cycle per tuple.
    Sat {
        /// Issue cycle per tuple id, straight from the model.
        cycles: Vec<u32>,
    },
    /// Proven unsatisfiable — no schedule with μ ≤ budget exists.
    Unsat,
    /// Abandoned on a conflict/deadline/stop limit.
    Unknown,
}

/// One feasibility query of the descending loop, kept for the audit.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The NOP budget N asked about.
    pub budget: u32,
    /// Cycle-window size used (`n + budget`); the audit re-derives it.
    pub horizon: u32,
    /// Variables in the encoding.
    pub vars: usize,
    /// The verdict.
    pub result: QueryResult,
    /// Conflicts spent on this query.
    pub conflicts: u64,
    /// Decisions spent on this query.
    pub decisions: u64,
    /// Propagations spent on this query.
    pub propagations: u64,
}

/// A finished SAT-backend run: the best schedule found plus the complete
/// query trail that justifies (or fails to justify) its optimality.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Best instruction order found.
    pub order: Vec<TupleId>,
    /// Pipeline unit per tuple (the default assignment; the SAT backend
    /// does not do pipeline selection).
    pub assignment: Vec<Option<PipelineId>>,
    /// η per position of `order`.
    pub etas: Vec<u32>,
    /// μ of the best schedule.
    pub nops: u32,
    /// The shared heuristic incumbent the descent started from.
    pub initial_order: Vec<TupleId>,
    /// μ of the incumbent.
    pub initial_nops: u32,
    /// True when optimality was established (by bound or by UNSAT).
    pub optimal: bool,
    /// Aggregate counters.
    pub stats: SolveStats,
    /// Every feasibility query, in the order asked.
    pub queries: Vec<QueryRecord>,
    /// Set when the encoder self-check failed: the incumbent schedule did
    /// not satisfy its own encoding, so no query result is trustworthy.
    pub encode_fault: Option<String>,
}

/// Find the minimum-NOP schedule of `ctx`'s block by descending SAT
/// feasibility queries.
///
/// Starts from the shared list-schedule incumbent ([`seed_incumbent`] —
/// the same prologue the branch-and-bound uses), then repeatedly asks
/// "μ ≤ best − 1?": SAT improves the incumbent (the decoded model is
/// replayed through the timing engine, which may land *below* the budget
/// and skip levels), UNSAT proves the incumbent optimal. An incumbent at
/// the global lower bound is optimal without any query.
pub fn solve_schedule(ctx: &SchedContext<'_>, cfg: &SolveConfig) -> SolveOutcome {
    let n = ctx.len();
    if n == 0 {
        return SolveOutcome {
            order: Vec::new(),
            assignment: Vec::new(),
            etas: Vec::new(),
            nops: 0,
            initial_order: Vec::new(),
            initial_nops: 0,
            optimal: true,
            stats: SolveStats::default(),
            queries: Vec::new(),
            encode_fault: None,
        };
    }

    let boundary = BoundaryState::cold(ctx.machine.pipeline_count());
    let seed = seed_incumbent(ctx, InitialHeuristic::MaxDistance, &boundary, false);
    let initial_order = seed.order;
    let initial_nops = seed.nops;
    let lb = seed.global_lb;

    let mut best_order = initial_order.clone();
    let mut best_etas = seed.etas;
    let mut best_nops = initial_nops;
    let mut stats = SolveStats::default();
    let mut queries: Vec<QueryRecord> = Vec::new();
    let mut optimal = false;

    // Encoder self-check: the incumbent is a real schedule, so its engine
    // issue cycles must satisfy the encoding at its own μ. A failure here
    // means the encoding disagrees with the timing model and every answer
    // below would be meaningless.
    let mut encode_fault = None;
    {
        let enc = Encoding::build(ctx, best_nops);
        let cycles = encode::issue_cycles(ctx, &best_order);
        if let Err(e) = enc.check_cycles(ctx, &cycles) {
            encode_fault = Some(format!("incumbent fails its own encoding: {e}"));
        }
    }

    if best_nops <= lb {
        optimal = true;
        stats.proved_by_bound = true;
    }

    while encode_fault.is_none() && !optimal {
        // best_nops > lb ≥ 0 here, so the next budget cannot underflow.
        let budget = best_nops - 1;
        let enc = Encoding::build(ctx, budget);
        if enc.trivially_unsat {
            // The chain bounds alone refute the budget: a genuine UNSAT.
            queries.push(QueryRecord {
                budget,
                horizon: enc.horizon,
                vars: enc.num_vars(),
                result: QueryResult::Unsat,
                conflicts: 0,
                decisions: 0,
                propagations: 0,
            });
            stats.queries_unsat += 1;
            optimal = true;
            break;
        }

        let mut solver = Solver::new(enc.num_vars());
        let loaded = enc.emit_into(ctx, &mut solver);
        let remaining_conflicts = cfg.max_conflicts.map(|m| m.saturating_sub(stats.conflicts));
        if remaining_conflicts == Some(0) {
            stats.truncated = true;
            break;
        }
        let limits = SatLimits {
            max_conflicts: remaining_conflicts,
            deadline: cfg.deadline,
            stop: cfg.stop.clone(),
        };
        let result = if loaded {
            solver.solve(&limits)
        } else {
            // Root-level simplification already closed the query.
            SolveResult::Unsat
        };
        stats.conflicts += solver.stats.conflicts;
        stats.decisions += solver.stats.decisions;
        stats.propagations += solver.stats.propagations;
        stats.restarts += solver.stats.restarts;
        stats.learned += solver.stats.learned;
        let mut record = QueryRecord {
            budget,
            horizon: enc.horizon,
            vars: enc.num_vars(),
            result: QueryResult::Unknown,
            conflicts: solver.stats.conflicts,
            decisions: solver.stats.decisions,
            propagations: solver.stats.propagations,
        };

        match result {
            SolveResult::Sat(model) => {
                let cycles = enc
                    .decode(&model)
                    .expect("solver models always assign exactly one cycle per tuple");
                let order = Encoding::order_of_cycles(&cycles);
                let (etas, nops) = evaluate_schedule(ctx, &order);
                debug_assert!(
                    nops <= budget,
                    "replayed μ {nops} exceeds SAT budget {budget}"
                );
                record.result = QueryResult::Sat { cycles };
                queries.push(record);
                stats.queries_sat += 1;
                if nops < best_nops {
                    best_order = order;
                    best_etas = etas;
                    best_nops = nops;
                } else {
                    // Replay contradicts the model (encode fault caught in
                    // release builds): stop trusting the loop.
                    encode_fault = Some(format!("SAT at budget {budget} replayed to μ {nops}"));
                    break;
                }
                if best_nops <= lb {
                    optimal = true;
                }
            }
            SolveResult::Unsat => {
                record.result = QueryResult::Unsat;
                queries.push(record);
                stats.queries_unsat += 1;
                optimal = true;
            }
            SolveResult::Unknown => {
                queries.push(record);
                stats.queries_unknown += 1;
                stats.truncated = true;
                stats.deadline_hit = cfg.deadline.is_some_and(|d| Instant::now() >= d)
                    || cfg
                        .stop
                        .as_ref()
                        .is_some_and(|s| s.load(std::sync::atomic::Ordering::Relaxed));
                break;
            }
        }
    }

    if encode_fault.is_some() {
        optimal = false;
        stats.truncated = true;
    }

    SolveOutcome {
        order: best_order,
        assignment: ctx.sigma.clone(),
        etas: best_etas,
        nops: best_nops,
        initial_order,
        initial_nops,
        optimal,
        stats,
        queries,
        encode_fault,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_core::{search, SearchConfig};
    use pipesched_ir::{BlockBuilder, DepDag};
    use pipesched_machine::presets;

    fn demo_block() -> pipesched_ir::BasicBlock {
        let mut b = BlockBuilder::new("solve");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        let a = b.add(x, y);
        b.store("m", m);
        b.store("a", a);
        b.finish().unwrap()
    }

    #[test]
    fn sat_backend_matches_bnb_on_demo() {
        let block = demo_block();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let bnb = search(&ctx, &SearchConfig::default());
        let sat = solve_schedule(&ctx, &SolveConfig::default());
        assert!(bnb.optimal && sat.optimal);
        assert_eq!(bnb.nops, sat.nops);
        assert!(sat.encode_fault.is_none());
        assert_eq!(sat.etas.iter().sum::<u32>(), sat.nops);
        // Optimality is justified: by the global bound, or by a final
        // UNSAT query one NOP below the answer.
        if sat.nops > pipesched_core::global_lower_bound(&ctx) {
            assert!(matches!(
                sat.queries.last().map(|q| (&q.result, q.budget)),
                Some((&QueryResult::Unsat, b)) if b == sat.nops - 1
            ));
        }
    }

    #[test]
    fn empty_block_is_trivially_optimal() {
        let block = BlockBuilder::new("e").finish().unwrap();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = solve_schedule(&ctx, &SolveConfig::default());
        assert!(out.optimal);
        assert_eq!(out.nops, 0);
    }

    #[test]
    fn conflict_budget_zero_truncates() {
        let block = demo_block();
        let dag = DepDag::build(&block);
        let machine = presets::paper_simulation();
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SolveConfig {
            max_conflicts: Some(0),
            ..SolveConfig::default()
        };
        let out = solve_schedule(&ctx, &cfg);
        // Either the incumbent was already provably optimal by bound, or
        // the run reports truncation without claiming optimality.
        if !out.stats.proved_by_bound {
            assert!(out.stats.truncated);
            assert!(!out.optimal);
        }
        assert_eq!(out.nops, out.initial_nops);
    }
}
