#![warn(missing_docs)]

//! Experiment harness for the `pipesched` reproduction.
//!
//! Every table and figure of the paper's evaluation (§2.3, §5) has a
//! regenerator here; the `repro` binary drives them and writes text + CSV
//! into a results directory. EXPERIMENTS.md records paper-vs-measured.
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Table 1 (search-space pruning) | [`experiments::table1`] | `table1` |
//! | Table 7 (16,000-run summary) | [`experiments::sweep`] | `table7` |
//! | Figure 1 (Ω calls vs block size) | [`experiments::sweep`] | `fig1` |
//! | Figure 4 (initial/final NOPs) | [`experiments::sweep`] | `fig4` |
//! | Figure 5 (block-size distribution) | [`experiments::sweep`] | `fig5` |
//! | Figure 6 (runtime vs block size) | [`experiments::sweep`] | `fig6` |
//! | Figure 7 (% optimal vs block size) | [`experiments::sweep`] | `fig7` |
//! | Ablations (ours) | [`experiments::ablation`] | `ablation` |

pub mod experiments;
pub mod report;
pub mod trajectory;

pub use experiments::sweep::{run_sweep, RunRecord, SweepConfig, SweepResult};
