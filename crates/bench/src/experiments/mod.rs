//! The experiment implementations.

pub mod ablation;
pub mod blocks;
pub mod encodings;
pub mod observe;
pub mod parallel;
pub mod prove;
pub mod serve;
pub mod solve;
pub mod sweep;
pub mod table1;
pub mod verify_sweep;
pub mod windowed;
