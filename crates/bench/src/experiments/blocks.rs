//! Deterministic lookup of benchmark blocks with exact instruction counts
//! (Table 1 uses "representative examples" of specific sizes).

use pipesched_ir::BasicBlock;
use pipesched_synth::{generate_block, GeneratorConfig};

/// Find a generated block with exactly `size` instructions, deterministic
/// in `salt` (different salts give different representative blocks of the
/// same size). Panics only if no block of that size exists within a large
/// seed budget — sizes 4..=48 are always reachable.
pub fn block_of_size(size: usize, salt: u64) -> BasicBlock {
    // Statement count is the main driver of block size; start near the
    // expected ratio and scan seeds.
    let base_statements = (size as f64 / 1.5).ceil() as usize;
    for spread in 0..6usize {
        for statements in base_statements.saturating_sub(spread)..=base_statements + 2 * spread + 2
        {
            for seed in 0..400u64 {
                let cfg = GeneratorConfig::new(
                    statements.max(1),
                    3 + (seed as usize % 8),
                    1 + (seed as usize % 5),
                    salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed,
                );
                let block = generate_block(&cfg);
                if block.len() == size {
                    return block;
                }
            }
        }
    }
    panic!("no synthetic block of size {size} found");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_sizes() {
        for &size in &[8usize, 11, 13, 16, 22] {
            let block = block_of_size(size, 1);
            assert_eq!(block.len(), size);
            block.verify().unwrap();
        }
    }

    #[test]
    fn salt_changes_the_block() {
        let a = block_of_size(13, 1);
        let b = block_of_size(13, 2);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        assert_eq!(block_of_size(16, 3), block_of_size(16, 3));
    }
}
