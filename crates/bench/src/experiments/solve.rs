//! Backend-vs-backend trajectory: SAT portfolio against the paper's B&B.
//!
//! Every corpus block is scheduled twice — once by the branch-and-bound
//! of §4.2 and once by the `pipesched-solve` descending-feasibility SAT
//! backend — and the two answers are cross-certified:
//!
//! 1. When both backends *prove* optimality, their NOP counts must be
//!    identical (gate: zero disagreements).
//! 2. Every SAT outcome must survive [`audit_outcome`] — full
//!    `pipesched-analyze` certification of the schedule plus a from-scratch
//!    replay of the query trail (gate: zero audit failures).
//!
//! Beyond the gates, the experiment records the performance trajectory —
//! which backend was faster per block, total conflicts/decisions, how
//! often the global lower bound closed a query without search — and lands
//! everything in `BENCH_solve.json` so CI can diff runs.

use std::time::Instant;

use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_json::{json_object, Json};
use pipesched_machine::presets;
use pipesched_solve::{audit_outcome, cross_check, solve_schedule, SolveConfig};
use pipesched_synth::CorpusSpec;

use crate::report::{f, TextTable};

/// Aggregate result of the backend-portfolio experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Corpus blocks scheduled by both backends.
    pub blocks: usize,
    /// Blocks where the B&B proved optimality within λ.
    pub bnb_optimal: usize,
    /// Blocks where the SAT backend proved optimality.
    pub sat_optimal: usize,
    /// Blocks where *both* proved optimality (the comparable set).
    pub both_optimal: usize,
    /// Comparable blocks with identical optimal NOP counts.
    pub agreements: usize,
    /// Comparable blocks with different "optimal" NOP counts (must be 0).
    pub disagreements: usize,
    /// SAT outcomes rejected by [`audit_outcome`] (must be 0).
    pub audit_failures: usize,
    /// Comparable blocks the SAT backend answered faster.
    pub sat_faster: usize,
    /// Comparable blocks the B&B answered faster.
    pub bnb_faster: usize,
    /// Total B&B wall clock, microseconds.
    pub bnb_micros: u64,
    /// Total SAT wall clock, microseconds.
    pub sat_micros: u64,
    /// Total CDCL conflicts across all queries.
    pub conflicts: u64,
    /// Total CDCL decisions.
    pub decisions: u64,
    /// Total CDCL propagations.
    pub propagations: u64,
    /// Feasibility queries answered SAT.
    pub queries_sat: u64,
    /// Feasibility queries answered UNSAT.
    pub queries_unsat: u64,
    /// Blocks closed by the global lower bound without any SAT query.
    pub proved_by_bound: u64,
}

impl SolveReport {
    /// True when both hard gates hold: every comparable block agrees and
    /// every SAT outcome audited clean.
    pub fn gates_hold(&self) -> bool {
        self.disagreements == 0 && self.audit_failures == 0
    }

    /// Render the experiment as a metric table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["metric", "value"]);
        t.row(["corpus blocks".to_string(), self.blocks.to_string()]);
        t.row([
            "B&B proved optimal".to_string(),
            self.bnb_optimal.to_string(),
        ]);
        t.row([
            "SAT proved optimal".to_string(),
            self.sat_optimal.to_string(),
        ]);
        t.row([
            "both proved optimal".to_string(),
            self.both_optimal.to_string(),
        ]);
        t.row([
            "optimal-μ agreements".to_string(),
            self.agreements.to_string(),
        ]);
        t.row(["disagreements".to_string(), self.disagreements.to_string()]);
        t.row([
            "audit failures".to_string(),
            self.audit_failures.to_string(),
        ]);
        t.row([
            "SAT faster (blocks)".to_string(),
            self.sat_faster.to_string(),
        ]);
        t.row([
            "B&B faster (blocks)".to_string(),
            self.bnb_faster.to_string(),
        ]);
        t.row([
            "B&B total (ms)".to_string(),
            f(self.bnb_micros as f64 / 1e3, 1),
        ]);
        t.row([
            "SAT total (ms)".to_string(),
            f(self.sat_micros as f64 / 1e3, 1),
        ]);
        t.row(["CDCL conflicts".to_string(), self.conflicts.to_string()]);
        t.row(["CDCL decisions".to_string(), self.decisions.to_string()]);
        t.row([
            "CDCL propagations".to_string(),
            self.propagations.to_string(),
        ]);
        t.row(["queries SAT".to_string(), self.queries_sat.to_string()]);
        t.row(["queries UNSAT".to_string(), self.queries_unsat.to_string()]);
        t.row([
            "closed by lower bound".to_string(),
            self.proved_by_bound.to_string(),
        ]);
        t
    }

    /// The machine-readable `BENCH_solve.json` document.
    pub fn to_json(&self) -> Json {
        json_object![
            ("experiment", "solve"),
            ("blocks", self.blocks as i64),
            ("bnb_optimal", self.bnb_optimal as i64),
            ("sat_optimal", self.sat_optimal as i64),
            ("both_optimal", self.both_optimal as i64),
            ("agreements", self.agreements as i64),
            ("disagreements", self.disagreements as i64),
            ("audit_failures", self.audit_failures as i64),
            ("sat_faster", self.sat_faster as i64),
            ("bnb_faster", self.bnb_faster as i64),
            ("bnb_micros", self.bnb_micros as i64),
            ("sat_micros", self.sat_micros as i64),
            ("conflicts", self.conflicts as i64),
            ("decisions", self.decisions as i64),
            ("propagations", self.propagations as i64),
            ("queries_sat", self.queries_sat as i64),
            ("queries_unsat", self.queries_unsat as i64),
            ("proved_by_bound", self.proved_by_bound as i64),
            ("gates_hold", self.gates_hold()),
        ]
    }
}

/// Schedule `runs` corpus blocks with both exact backends and
/// cross-certify every answer.
pub fn run(runs: usize, lambda: u64) -> SolveReport {
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let machine = presets::paper_simulation();
    let search_cfg = SearchConfig {
        lambda,
        ..SearchConfig::default()
    };
    let solve_cfg = SolveConfig::default();

    let mut report = SolveReport {
        blocks: runs,
        bnb_optimal: 0,
        sat_optimal: 0,
        both_optimal: 0,
        agreements: 0,
        disagreements: 0,
        audit_failures: 0,
        sat_faster: 0,
        bnb_faster: 0,
        bnb_micros: 0,
        sat_micros: 0,
        conflicts: 0,
        decisions: 0,
        propagations: 0,
        queries_sat: 0,
        queries_unsat: 0,
        proved_by_bound: 0,
    };

    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);

        let t = Instant::now();
        let bnb = search(&ctx, &search_cfg);
        let bnb_micros = t.elapsed().as_micros() as u64;
        report.bnb_micros += bnb_micros;

        let t = Instant::now();
        let sat = solve_schedule(&ctx, &solve_cfg);
        let sat_micros = t.elapsed().as_micros() as u64;
        report.sat_micros += sat_micros;

        report.bnb_optimal += usize::from(bnb.optimal);
        report.sat_optimal += usize::from(sat.optimal);
        report.conflicts += sat.stats.conflicts;
        report.decisions += sat.stats.decisions;
        report.propagations += sat.stats.propagations;
        report.queries_sat += u64::from(sat.stats.queries_sat);
        report.queries_unsat += u64::from(sat.stats.queries_unsat);
        report.proved_by_bound += u64::from(sat.stats.proved_by_bound);

        if audit_outcome(&block, &machine, &sat).has_errors() {
            report.audit_failures += 1;
        }

        if bnb.optimal && sat.optimal {
            report.both_optimal += 1;
            let agree = cross_check(&block, bnb.optimal, bnb.nops, sat.optimal, sat.nops);
            if agree.has_errors() {
                report.disagreements += 1;
            } else {
                report.agreements += 1;
            }
            if sat_micros < bnb_micros {
                report.sat_faster += 1;
            } else {
                report.bnb_faster += 1;
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_and_audit_clean_on_the_corpus() {
        let r = run(12, 50_000);
        assert_eq!(r.blocks, 12);
        assert_eq!(r.disagreements, 0, "SAT and B&B disagree on optimal μ");
        assert_eq!(r.audit_failures, 0, "a SAT outcome failed its audit");
        assert!(r.both_optimal >= 1, "no comparable block at lambda 50k");
        assert_eq!(r.agreements, r.both_optimal);
        assert_eq!(r.sat_faster + r.bnb_faster, r.both_optimal);
        assert!(r.gates_hold());
        let doc = r.to_json();
        assert_eq!(doc.get("disagreements").and_then(Json::as_i64), Some(0));
        assert_eq!(doc.get("gates_hold").and_then(Json::as_bool), Some(true));
        assert!(r.table().render().contains("optimal-μ agreements"));
    }
}
