//! Windowed-scheduling experiment (§5.3 future work, implemented): quality
//! and cost of locally-optimal windows versus the full optimal search on
//! large blocks.

use std::time::Instant;

use pipesched_core::{search, windowed_schedule, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_synth::{generate_block, FrequencyTable, GeneratorConfig};

use crate::report::{f, TextTable};

/// One (block, window) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedRow {
    /// Instructions in the block.
    pub block_size: usize,
    /// Window length (`usize::MAX` row = full optimal search).
    pub window: usize,
    /// Final NOPs.
    pub nops: u32,
    /// Ω calls spent.
    pub omega: u64,
    /// Wall-clock microseconds.
    pub micros: u64,
}

/// Generate `count` large multiplication-heavy blocks (the hard case).
fn large_blocks(count: usize) -> Vec<pipesched_ir::BasicBlock> {
    (0..count)
        .map(|k| {
            let mut cfg = GeneratorConfig::new(40, 24, 5, xw_seed(k));
            cfg.frequencies = FrequencyTable::mul_heavy();
            generate_block(&cfg)
        })
        .collect()
}

fn xw_seed(k: usize) -> u64 {
    0x57ee1 ^ (k as u64).wrapping_mul(0x9E37_79B9)
}

/// Run the windowed-vs-optimal comparison.
pub fn run(blocks: usize, lambda: u64) -> Vec<WindowedRow> {
    let machine = presets::paper_simulation();
    let mut rows = Vec::new();
    for block in large_blocks(blocks) {
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);

        for window in [5usize, 10, 20] {
            let start = Instant::now();
            let w = windowed_schedule(&ctx, window, lambda);
            rows.push(WindowedRow {
                block_size: block.len(),
                window,
                nops: w.nops,
                omega: w.stats.omega_calls,
                micros: start.elapsed().as_micros() as u64,
            });
        }
        let start = Instant::now();
        let full = search(&ctx, &SearchConfig::with_lambda(lambda));
        rows.push(WindowedRow {
            block_size: block.len(),
            window: usize::MAX,
            nops: full.nops,
            omega: full.stats.omega_calls,
            micros: start.elapsed().as_micros() as u64,
        });
    }
    rows
}

/// Render aggregated by window size.
pub fn render(rows: &[WindowedRow]) -> TextTable {
    let mut t = TextTable::new(["window", "avg NOPs", "avg Ω calls", "avg time (us)"]);
    for window in [5usize, 10, 20, usize::MAX] {
        let sel: Vec<&WindowedRow> = rows.iter().filter(|r| r.window == window).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        t.row([
            if window == usize::MAX {
                "full search".to_string()
            } else {
                window.to_string()
            },
            f(sel.iter().map(|r| f64::from(r.nops)).sum::<f64>() / n, 2),
            f(sel.iter().map(|r| r.omega as f64).sum::<f64>() / n, 1),
            f(sel.iter().map(|r| r.micros as f64).sum::<f64>() / n, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_quality_degrades_gracefully() {
        let rows = run(3, 50_000);
        let avg = |w: usize| {
            let sel: Vec<_> = rows.iter().filter(|r| r.window == w).collect();
            sel.iter().map(|r| f64::from(r.nops)).sum::<f64>() / sel.len() as f64
        };
        // Full search is never worse than any window on average... it can
        // be truncated too, so compare loosely: window-20 within 50% of
        // full, and all schedules exist.
        assert!(rows.len() == 12);
        assert!(avg(20) <= avg(5) + 3.0, "wider windows should help");
    }
}
