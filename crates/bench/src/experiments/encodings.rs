//! Delay-mechanism encoding study (ours; §2.2 grounds it): how much do the
//! *practical* explicit-interlock encodings cost relative to precise
//! interlock hardware, measured on optimally scheduled corpus blocks?
//!
//! * exact wait counts (the §2.2 "explicit waiting" ideal) — always 0;
//! * Tera-style lookahead fields of 1–3 bits (clamped dependence
//!   distances);
//! * CARP-style per-pipeline wait masks (coarse: wait for the *latest*
//!   operation in the producer's pipeline).

use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::{presets, Machine};
use pipesched_sim::{conservatism, lookahead_penalty, simulate_interlock, TimingModel};
use pipesched_synth::CorpusSpec;

use crate::report::{f, TextTable};

/// Aggregated penalty of one encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingRow {
    /// Encoding label.
    pub label: String,
    /// Mean extra cycles per block vs precise interlock.
    pub avg_extra_cycles: f64,
    /// Fraction of blocks with any penalty at all.
    pub pct_affected: f64,
    /// Worst penalty observed.
    pub max_extra_cycles: u64,
}

/// Run the encoding study over `runs` corpus blocks on `machine`
/// (optimally scheduled first, as a compiler for such a machine would).
pub fn run_on(machine: &Machine, runs: usize, lambda: u64) -> Vec<EncodingRow> {
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let mut tera_bits: Vec<Vec<u64>> = vec![Vec::new(); 4]; // 1,2,3,ideal
    let mut carp: Vec<u64> = Vec::new();

    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, machine);
        let out = search(&ctx, &SearchConfig::with_lambda(lambda));
        let tm = TimingModel::new(&block, &dag, machine);
        // Sanity: the scheduler's cycle count matches the simulator's.
        let precise = simulate_interlock(&tm, &out.order);
        debug_assert_eq!(precise.total_stalls, u64::from(out.nops));

        for (slot, bits) in [(0usize, 1u32), (1, 2), (2, 3), (3, 32)] {
            tera_bits[slot].push(lookahead_penalty(&tm, &out.order, bits));
        }
        carp.push(conservatism(&tm, &out.order));
    }

    let row = |label: &str, xs: &[u64]| EncodingRow {
        label: label.to_string(),
        avg_extra_cycles: xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64,
        pct_affected: 100.0 * xs.iter().filter(|&&x| x > 0).count() as f64 / xs.len().max(1) as f64,
        max_extra_cycles: xs.iter().copied().max().unwrap_or(0),
    };

    vec![
        row("exact wait counts (ideal)", &vec![0; runs]),
        row("Tera lookahead, 3-bit field", &tera_bits[2]),
        row("Tera lookahead, 2-bit field", &tera_bits[1]),
        row("Tera lookahead, 1-bit field", &tera_bits[0]),
        row("Tera lookahead, unbounded", &tera_bits[3]),
        row("CARP pipeline masks", &carp),
    ]
}

/// Render the encoding table.
pub fn render(machine_name: &str, rows: &[EncodingRow]) -> TextTable {
    let mut t = TextTable::new([
        format!("encoding (machine: {machine_name})"),
        "avg extra cycles".to_string(),
        "% blocks affected".to_string(),
        "max extra".to_string(),
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            f(r.avg_extra_cycles, 3),
            f(r.pct_affected, 1),
            r.max_extra_cycles.to_string(),
        ]);
    }
    t
}

/// Default machine for the study: the deep pipeline, where long latencies
/// make narrow lookahead fields hurt.
pub fn run(runs: usize, lambda: u64) -> (String, Vec<EncodingRow>) {
    let machine = presets::deep_pipeline();
    let rows = run_on(&machine, runs, lambda);
    (machine.name.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_hierarchy() {
        let (_, rows) = run(20, 20_000);
        let by_label = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .avg_extra_cycles
        };
        // Unbounded Tera field is exact.
        assert_eq!(by_label("Tera lookahead, unbounded"), 0.0);
        // Narrower fields never cost less than wider ones.
        assert!(by_label("Tera lookahead, 1-bit") >= by_label("Tera lookahead, 2-bit"));
        assert!(by_label("Tera lookahead, 2-bit") >= by_label("Tera lookahead, 3-bit"));
        // All penalties are non-negative by construction.
        for r in &rows {
            assert!(r.avg_extra_cycles >= 0.0);
            assert!(r.pct_affected <= 100.0);
        }
    }
}
