//! `repro verify`: the reproducibility gate. For N corpus blocks, run the
//! *entire* pipeline and check every cross-cutting invariant:
//!
//! 1. schedule optimally (or truncated-legal) with the default config;
//! 2. validate η against the independent cycle-accurate simulator;
//! 3. NOP-pad and prove the padding minimal;
//! 4. allocate registers at exactly the measured pressure and emit code;
//! 5. execute the emitted code and the tuple interpreter on random inputs
//!    and compare final memory;
//! 6. tag and execute the Tera and CARP encodings (hazard-freedom is
//!    asserted inside their executors).
//!
//! Any violation panics with the block index, so a failure is immediately
//! reproducible via the corpus seed.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_frontend::interpret;
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_regalloc::{allocate, emit, max_pressure};
use pipesched_sim::{pad_schedule, tag_carp, tag_lookahead, validate_schedule, TimingModel};
use pipesched_synth::CorpusSpec;

/// Outcome counters of a verification sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks fully verified.
    pub blocks: usize,
    /// Blocks whose search completed (provably optimal).
    pub optimal: usize,
    /// Total instructions checked.
    pub instructions: usize,
    /// Total NOPs in the final schedules.
    pub nops: u64,
}

/// Run the gate over the first `runs` corpus blocks. Panics on any
/// invariant violation.
pub fn run(runs: usize, lambda: u64) -> VerifyReport {
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let machine = presets::paper_simulation();
    let mut report = VerifyReport::default();
    let mut rng = StdRng::seed_from_u64(0x5eed);

    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);

        // 1. Schedule.
        let out = search(&ctx, &SearchConfig::with_lambda(lambda));

        // 2. Simulator agreement.
        validate_schedule(&block, &dag, &machine, &out.order, &out.etas)
            .unwrap_or_else(|e| panic!("block {k}: {e}"));

        // 2b. Independent certification (third timing implementation).
        let cert = pipesched_analyze::certify::certify(
            &block,
            &machine,
            pipesched_analyze::Claim {
                order: &out.order,
                assignment: Some(&out.assignment),
                etas: Some(&out.etas),
                nops: Some(out.nops),
            },
        );
        assert!(
            cert.is_certified(),
            "block {k}: failed certification:\n{}",
            cert.report
        );

        // 3. Minimal padding.
        let tm = TimingModel::new(&block, &dag, &machine);
        let padded = pad_schedule(&out.order, &out.etas);
        padded
            .execute(&tm)
            .unwrap_or_else(|e| panic!("block {k}: {e}"));
        assert!(padded.is_minimally_padded(&tm), "block {k}: overpadded");

        // 4. Registers + codegen.
        let pressure = max_pressure(&block, &out.order);
        let regs =
            allocate(&block, &out.order, pressure).unwrap_or_else(|e| panic!("block {k}: {e}"));
        let program =
            emit(&block, &out.order, &out.etas, &regs).unwrap_or_else(|e| panic!("block {k}: {e}"));

        // 5. Semantics on random inputs.
        let inputs: HashMap<String, i64> = (0..block.symbols().len())
            .map(|i| {
                let name = block
                    .symbols()
                    .name(pipesched_ir::VarId(i as u32))
                    .expect("dense")
                    .to_string();
                (name, rng.gen_range(-1000..1000))
            })
            .collect();
        let reference = interpret(&block, &inputs);
        let executed = program.execute(&inputs);
        for (var, &v) in &reference.memory {
            assert_eq!(
                executed.get(var).copied().unwrap_or(0),
                v,
                "block {k}: variable {var} diverged"
            );
        }

        // 6. Encodings stay safe (their executors assert hazard freedom).
        let _ = tag_lookahead(&tm, &out.order, 7).execute(&tm);
        let _ = tag_carp(&tm, &out.order).execute(&tm);

        report.blocks += 1;
        report.optimal += usize::from(out.optimal);
        report.instructions += block.len();
        report.nops += u64::from(out.nops);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_gate_passes_on_a_sample() {
        let report = run(25, 50_000);
        assert_eq!(report.blocks, 25);
        assert!(report.optimal >= 23);
        assert!(report.instructions > 0);
    }
}
