//! Observability-overhead experiment: what does the tracing layer cost?
//!
//! The tentpole claim of the trace crate is that the *disabled* path is
//! free enough to leave compiled in everywhere. This experiment replays
//! the repeated-shapes serving workload (same generator as the `serve`
//! experiment) through a fresh engine three ways per repetition —
//! disabled, disabled again back to back, and with tracing enabled — and
//! takes minima, mirroring the interleaved-min methodology of the `prove`
//! experiment. The delta between the two disabled passes bounds the
//! disabled-path cost plus measurement noise (gate: < 2%); the enabled
//! pass prices what turning tracing on actually buys.
//!
//! A separate metrics pass (tracing off) collects the fleet-wide view:
//! latency quantiles from the service histogram, per-tier answer and Ω
//! counts, and the aggregated `1 + Ω − bound-pruned == nodes` identity
//! over all eligible searches. Everything lands in `BENCH_sched.json` so
//! CI can diff runs.

use std::sync::atomic::Ordering;
use std::time::Instant;

use pipesched_json::{json_object, Json};
use pipesched_service::{run_batch, EngineConfig, ServeConfig, ServiceEngine, Tier};

use crate::experiments::serve::workload;
use crate::report::{f, TextTable};

/// Measured outcome of the observability experiment.
#[derive(Debug, Clone)]
pub struct ObserveReport {
    /// Requests replayed per pass.
    pub requests: u64,
    /// Error responses in the metrics pass (must be zero).
    pub errors: u64,
    /// Validated cache hits in the metrics pass.
    pub cache_hits: u64,
    /// Requests per second in the metrics pass.
    pub throughput_rps: f64,
    /// Latency quantiles from the service histogram, microseconds.
    pub p50_micros: u64,
    /// 90th percentile latency, microseconds.
    pub p90_micros: u64,
    /// 99th percentile latency, microseconds.
    pub p99_micros: u64,
    /// Answers per tier, `Tier::index()` order (cache/list/windowed/bnb).
    pub tier_answers: [u64; 4],
    /// Ω calls per tier, same order.
    pub tier_omega: [u64; 4],
    /// Aggregate `1 + Ω − bound-pruned == nodes` identity over all
    /// eligible searches (must hold).
    pub identity_ok: bool,
    /// Whole-replay wall clock with tracing disabled, pass 1 (min over
    /// repetitions), microseconds.
    pub disabled_micros: u64,
    /// Disabled pass 2, run back to back with pass 1, microseconds.
    pub disabled_again_micros: u64,
    /// Whole-replay wall clock with tracing enabled, microseconds.
    pub traced_micros: u64,
    /// Whole-replay wall clock with the flight recorder enabled (span
    /// tracing off), microseconds.
    pub flight_micros: u64,
}

impl ObserveReport {
    /// Relative delta between the two disabled passes, percent — the same
    /// code both times, so this bounds the disabled-path cost plus noise.
    pub fn disabled_overhead_pct(&self) -> f64 {
        if self.disabled_micros == 0 {
            return 0.0;
        }
        100.0 * (self.disabled_again_micros as f64 - self.disabled_micros as f64).abs()
            / self.disabled_micros as f64
    }

    /// Cost of tracing *on* relative to the faster disabled pass, percent.
    pub fn traced_overhead_pct(&self) -> f64 {
        let base = self.disabled_micros.min(self.disabled_again_micros);
        if base == 0 {
            return 0.0;
        }
        100.0 * (self.traced_micros as f64 - base as f64) / base as f64
    }

    /// Cost of the flight recorder *on* (one wide event per request into
    /// the ring) relative to the faster disabled pass, percent. The
    /// disabled passes already price the recorder's off path — a single
    /// relaxed load per request — inside the < 2% disabled gate.
    pub fn flight_overhead_pct(&self) -> f64 {
        let base = self.disabled_micros.min(self.disabled_again_micros);
        if base == 0 {
            return 0.0;
        }
        100.0 * (self.flight_micros as f64 - base as f64) / base as f64
    }

    /// Render the experiment as a metric table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["metric", "value"]);
        t.row(["requests per pass".to_string(), self.requests.to_string()]);
        t.row(["errors".to_string(), self.errors.to_string()]);
        t.row(["cache hits".to_string(), self.cache_hits.to_string()]);
        t.row(["throughput (req/s)".to_string(), f(self.throughput_rps, 0)]);
        t.row(["latency p50 (µs)".to_string(), self.p50_micros.to_string()]);
        t.row(["latency p90 (µs)".to_string(), self.p90_micros.to_string()]);
        t.row(["latency p99 (µs)".to_string(), self.p99_micros.to_string()]);
        for tier in [Tier::Cache, Tier::List, Tier::Windowed, Tier::Bnb] {
            t.row([
                format!("answers[{}] / Ω", tier.name()),
                format!(
                    "{} / {}",
                    self.tier_answers[tier.index()],
                    self.tier_omega[tier.index()]
                ),
            ]);
        }
        t.row([
            "search identity holds".to_string(),
            self.identity_ok.to_string(),
        ]);
        t.row([
            "disabled pass 1 (ms)".to_string(),
            f(self.disabled_micros as f64 / 1e3, 1),
        ]);
        t.row([
            "disabled pass 2 (ms)".to_string(),
            f(self.disabled_again_micros as f64 / 1e3, 1),
        ]);
        t.row([
            "traced pass (ms)".to_string(),
            f(self.traced_micros as f64 / 1e3, 1),
        ]);
        t.row([
            "flight pass (ms)".to_string(),
            f(self.flight_micros as f64 / 1e3, 1),
        ]);
        t.row([
            "disabled-path delta (%)".to_string(),
            f(self.disabled_overhead_pct(), 2),
        ]);
        t.row([
            "tracing-on overhead (%)".to_string(),
            f(self.traced_overhead_pct(), 2),
        ]);
        t.row([
            "flight-on overhead (%)".to_string(),
            f(self.flight_overhead_pct(), 2),
        ]);
        t
    }

    /// The machine-readable `BENCH_sched.json` document.
    pub fn to_json(&self) -> Json {
        let per_tier = |counts: &[u64; 4]| {
            Json::Object(
                [Tier::Cache, Tier::List, Tier::Windowed, Tier::Bnb]
                    .iter()
                    .map(|t| (t.name().to_string(), Json::Int(counts[t.index()] as i64)))
                    .collect(),
            )
        };
        json_object![
            ("experiment", "observe"),
            ("requests", self.requests as i64),
            ("errors", self.errors as i64),
            ("cache_hits", self.cache_hits as i64),
            ("throughput_rps", self.throughput_rps),
            ("p50_micros", self.p50_micros as i64),
            ("p90_micros", self.p90_micros as i64),
            ("p99_micros", self.p99_micros as i64),
            ("tier_answers", per_tier(&self.tier_answers)),
            ("tier_omega", per_tier(&self.tier_omega)),
            ("identity_ok", self.identity_ok),
            ("disabled_micros", self.disabled_micros as i64),
            ("disabled_again_micros", self.disabled_again_micros as i64),
            ("traced_micros", self.traced_micros as i64),
            ("flight_micros", self.flight_micros as i64),
            ("disabled_overhead_pct", self.disabled_overhead_pct()),
            ("traced_overhead_pct", self.traced_overhead_pct()),
            ("flight_overhead_pct", self.flight_overhead_pct()),
        ]
    }
}

/// One full workload replay through a fresh engine; returns the engine
/// (for its metrics) and the wall clock in microseconds.
fn replay(input: &str, workers: usize) -> (ServiceEngine, u64) {
    let engine = ServiceEngine::new(EngineConfig::default(), 4096, 8);
    let start = Instant::now();
    run_batch(&engine, input, &ServeConfig { workers }, false, false)
        .expect("in-memory batch replay cannot fail on IO");
    (engine, start.elapsed().as_micros() as u64)
}

/// Replay the repeated-shapes workload and price the tracing layer.
pub fn run(requests: usize, shapes: usize, workers: usize) -> ObserveReport {
    // Tracing and the flight recorder must start disabled: an earlier
    // experiment (or test) in the same process may have left them on.
    // With both off, the disabled passes price *all* compiled-in
    // observability — each request pays one relaxed load per layer.
    pipesched_trace::set_enabled(false);
    pipesched_trace::flight::set_enabled(false);
    let input = workload(requests, shapes);

    // Metrics pass: one replay, tracing off, read the fleet-wide view.
    let (engine, wall) = replay(&input, workers);
    let m = engine.metrics();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let report_base = ObserveReport {
        requests: load(&m.requests),
        errors: load(&m.errors),
        cache_hits: load(&m.cache_hits),
        throughput_rps: load(&m.requests) as f64 * 1e6 / wall.max(1) as f64,
        p50_micros: m.latency.quantile_micros(0.50),
        p90_micros: m.latency.quantile_micros(0.90),
        p99_micros: m.latency.quantile_micros(0.99),
        tier_answers: std::array::from_fn(|i| load(&m.tier_answers[i])),
        tier_omega: std::array::from_fn(|i| load(&m.tier_omega[i])),
        identity_ok: m.search.identity_holds(),
        disabled_micros: 0,
        disabled_again_micros: 0,
        traced_micros: 0,
        flight_micros: 0,
    };

    // Timing passes: fresh engine per pass so every repetition does the
    // same searches; the two disabled passes run back to back (the gate
    // is their delta), the traced pass last. Min over repetitions.
    let (mut d1, mut d2, mut tr, mut fl) = (u64::MAX, u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..5 {
        let (_, t) = replay(&input, workers);
        d1 = d1.min(t);
        let (_, t) = replay(&input, workers);
        d2 = d2.min(t);
        pipesched_trace::set_enabled(true);
        let (_, t) = replay(&input, workers);
        pipesched_trace::set_enabled(false);
        tr = tr.min(t);
        pipesched_trace::store::clear();
        pipesched_trace::flight::set_enabled(true);
        let (_, t) = replay(&input, workers);
        pipesched_trace::flight::set_enabled(false);
        fl = fl.min(t);
        pipesched_trace::flight::reset();
    }

    ObserveReport {
        disabled_micros: d1,
        disabled_again_micros: d2,
        traced_micros: tr,
        flight_micros: fl,
        ..report_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_replay_is_clean_and_identity_holds() {
        let r = run(30, 3, 2);
        assert_eq!(r.requests, 30);
        assert_eq!(r.errors, 0);
        assert!(r.cache_hits > 0, "repeated shapes must hit the cache");
        assert!(r.identity_ok, "aggregate search identity must hold");
        assert!(r.tier_answers.iter().sum::<u64>() == 30);
        assert!(r.disabled_micros > 0 && r.traced_micros > 0 && r.flight_micros > 0);
        // Tracing and the flight recorder must stay off for whoever runs
        // next in this process.
        assert!(!pipesched_trace::enabled());
        assert!(!pipesched_trace::flight::enabled());
        let doc = r.to_json();
        assert_eq!(doc.get("errors").and_then(Json::as_i64), Some(0));
        assert_eq!(doc.get("identity_ok").and_then(Json::as_bool), Some(true));
        assert!(r.table().render().contains("disabled-path delta"));
    }
}
