//! The corpus sweep behind Table 7 and Figures 1, 4, 5, 6 and 7: schedule
//! every block of the (re-generated) 16,000-block corpus, recording per-run
//! statistics, in parallel across CPU cores.

use std::time::{Duration, Instant};

use crossbeam::thread;
use parking_lot::Mutex;

use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::{presets, Machine};
use pipesched_sim::validate_schedule;
use pipesched_synth::CorpusSpec;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Corpus to schedule.
    pub corpus: CorpusSpec,
    /// Curtail point λ.
    pub lambda: u64,
    /// Worker threads (0 ⇒ one per CPU).
    pub threads: usize,
    /// Target machine (defaults to the paper's simulation machine).
    pub machine: Machine,
    /// Cross-check every schedule against the cycle-accurate simulator.
    pub validate: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            corpus: CorpusSpec::paper_default(),
            lambda: 50_000,
            threads: 0,
            machine: presets::paper_simulation(),
            validate: true,
        }
    }
}

/// One scheduled block's record.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// Corpus index.
    pub run: usize,
    /// Instructions in the block.
    pub block_size: usize,
    /// μ of the initial list schedule.
    pub initial_nops: u32,
    /// μ of the best schedule found.
    pub final_nops: u32,
    /// Ω calls the search made.
    pub omega_calls: u64,
    /// True when the search completed (provably optimal).
    pub completed: bool,
    /// Wall-clock search time.
    pub search_micros: u64,
}

/// All records of a sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-run records, in corpus order.
    pub records: Vec<RunRecord>,
    /// λ used.
    pub lambda: u64,
}

/// Run the sweep.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let n = config.corpus.runs;
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        config.threads
    };
    let next = std::sync::atomic::AtomicUsize::new(0);
    let records = Mutex::new(Vec::with_capacity(n));

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let search_cfg = SearchConfig::with_lambda(config.lambda);
                let mut local = Vec::new();
                loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    local.push(schedule_one(config, &search_cfg, k));
                }
                records.lock().extend(local);
            });
        }
    })
    .expect("sweep worker panicked");

    let mut records = records.into_inner();
    records.sort_by_key(|r| r.run);
    SweepResult {
        records,
        lambda: config.lambda,
    }
}

fn schedule_one(config: &SweepConfig, search_cfg: &SearchConfig, k: usize) -> RunRecord {
    let block = config.corpus.block(k);
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &config.machine);
    let start = Instant::now();
    let out = search(&ctx, search_cfg);
    let elapsed = start.elapsed();
    if config.validate {
        validate_schedule(&block, &dag, &config.machine, &out.order, &out.etas)
            .expect("scheduler produced an invalid schedule");
    }
    // Debug builds additionally certify against the third, independent
    // timing re-derivation in `pipesched-analyze`.
    if cfg!(debug_assertions) {
        let cert = pipesched_analyze::certify::certify(
            &block,
            &config.machine,
            pipesched_analyze::Claim {
                order: &out.order,
                assignment: Some(&out.assignment),
                etas: Some(&out.etas),
                nops: Some(out.nops),
            },
        );
        assert!(
            cert.is_certified(),
            "run {k}: schedule failed certification:\n{}",
            cert.report
        );
    }
    RunRecord {
        run: k,
        block_size: block.len(),
        initial_nops: out.initial_nops,
        final_nops: out.nops,
        omega_calls: out.stats.omega_calls,
        completed: out.optimal,
        search_micros: elapsed.as_micros() as u64,
    }
}

/// Aggregate of one subset of runs (a Table 7 column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of runs.
    pub runs: usize,
    /// Average instructions per block.
    pub avg_instructions: f64,
    /// Average initial NOPs.
    pub avg_initial_nops: f64,
    /// Average final NOPs.
    pub avg_final_nops: f64,
    /// Average Ω calls.
    pub avg_omega: f64,
    /// Average search time.
    pub avg_time: Duration,
}

/// Aggregate an iterator of records.
pub fn aggregate<'a>(records: impl Iterator<Item = &'a RunRecord>) -> Aggregate {
    let mut runs = 0usize;
    let (mut size, mut init, mut fin, mut omega, mut micros) = (0f64, 0f64, 0f64, 0f64, 0f64);
    for r in records {
        runs += 1;
        size += r.block_size as f64;
        init += f64::from(r.initial_nops);
        fin += f64::from(r.final_nops);
        omega += r.omega_calls as f64;
        micros += r.search_micros as f64;
    }
    let d = runs.max(1) as f64;
    Aggregate {
        runs,
        avg_instructions: size / d,
        avg_initial_nops: init / d,
        avg_final_nops: fin / d,
        avg_omega: omega / d,
        avg_time: Duration::from_micros((micros / d) as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(runs: usize) -> SweepResult {
        let config = SweepConfig {
            corpus: CorpusSpec::paper_default().with_runs(runs),
            lambda: 20_000,
            threads: 2,
            ..SweepConfig::default()
        };
        run_sweep(&config)
    }

    #[test]
    fn sweep_produces_one_record_per_run() {
        let result = small_sweep(24);
        assert_eq!(result.records.len(), 24);
        for (k, r) in result.records.iter().enumerate() {
            assert_eq!(r.run, k);
            assert!(r.final_nops <= r.initial_nops);
        }
    }

    #[test]
    fn sweep_is_deterministic_modulo_time() {
        let a = small_sweep(12);
        let b = small_sweep(12);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.block_size, y.block_size);
            assert_eq!(x.final_nops, y.final_nops);
            assert_eq!(x.omega_calls, y.omega_calls);
            assert_eq!(x.completed, y.completed);
        }
    }

    #[test]
    fn most_runs_complete_at_default_lambda() {
        let result = small_sweep(40);
        let completed = result.records.iter().filter(|r| r.completed).count();
        assert!(
            completed * 10 >= result.records.len() * 9,
            "only {completed}/40 completed"
        );
    }

    #[test]
    fn aggregate_averages() {
        let result = small_sweep(10);
        let agg = aggregate(result.records.iter());
        assert_eq!(agg.runs, 10);
        assert!(agg.avg_instructions > 0.0);
        assert!(agg.avg_final_nops <= agg.avg_initial_nops);
    }
}
