//! Ablations of the design choices DESIGN.md calls out: each pruning
//! device, the initial-incumbent quality, the bound strength, equivalence
//! filtering, pipeline selection, and parallel search.

use pipesched_core::baselines::greedy_schedule;
use pipesched_core::parallel::parallel_search;
use pipesched_core::{
    search, BoundKind, EquivalenceMode, InitialHeuristic, ParallelConfig, SchedContext,
    SearchConfig,
};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_synth::CorpusSpec;

use crate::report::{f, TextTable};

/// One ablation configuration's aggregate result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Average Ω calls per block.
    pub avg_omega: f64,
    /// Average final NOPs.
    pub avg_final_nops: f64,
    /// Fraction of blocks completed (provably optimal).
    pub pct_optimal: f64,
}

/// Configurations ablated.
fn configs() -> Vec<(&'static str, SearchConfig)> {
    let base = SearchConfig::default();
    vec![
        ("library default (CP bound + LB stop)", base),
        ("paper-exact (alpha-beta only)", SearchConfig::paper_exact()),
        (
            "no equivalence [5c]",
            SearchConfig {
                equivalence: EquivalenceMode::Off,
                ..base
            },
        ),
        (
            "structural equivalence",
            SearchConfig {
                equivalence: EquivalenceMode::Structural,
                ..base
            },
        ),
        (
            "no quick check [5a]",
            SearchConfig {
                quick_check: false,
                ..base
            },
        ),
        (
            "alpha-beta bound + LB stop",
            SearchConfig {
                bound: BoundKind::AlphaBeta,
                ..base
            },
        ),
        (
            "source-order incumbent",
            SearchConfig {
                initial: InitialHeuristic::SourceOrder,
                ..base
            },
        ),
        (
            "greedy incumbent",
            SearchConfig {
                initial: InitialHeuristic::Greedy,
                ..base
            },
        ),
        (
            "tight lambda (1k)",
            SearchConfig {
                lambda: 1_000,
                ..base
            },
        ),
    ]
}

/// Run the search ablations over the first `runs` corpus blocks.
pub fn run(runs: usize, lambda: u64) -> Vec<AblationRow> {
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let machine = presets::paper_simulation();
    let mut rows = Vec::new();

    for (label, mut cfg) in configs() {
        if label != "tight lambda (1k)" {
            cfg.lambda = lambda;
        }
        let mut omega = 0f64;
        let mut nops = 0f64;
        let mut optimal = 0usize;
        for k in 0..runs {
            let block = corpus.block(k);
            let dag = DepDag::build(&block);
            let ctx = SchedContext::new(&block, &dag, &machine);
            let out = search(&ctx, &cfg);
            omega += out.stats.omega_calls as f64;
            nops += f64::from(out.nops);
            optimal += usize::from(out.optimal);
        }
        rows.push(AblationRow {
            label: label.to_string(),
            avg_omega: omega / runs as f64,
            avg_final_nops: nops / runs as f64,
            pct_optimal: 100.0 * optimal as f64 / runs as f64,
        });
    }

    // Heuristic baselines (no search).
    let mut greedy_nops = 0f64;
    let mut list_nops = 0f64;
    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let (_, g) = greedy_schedule(&ctx);
        greedy_nops += f64::from(g);
        let out = search(&ctx, &SearchConfig::with_lambda(1));
        list_nops += f64::from(out.initial_nops);
    }
    rows.push(AblationRow {
        label: "greedy baseline (Gross-style)".into(),
        avg_omega: 0.0,
        avg_final_nops: greedy_nops / runs as f64,
        pct_optimal: f64::NAN,
    });
    rows.push(AblationRow {
        label: "list schedule only".into(),
        avg_omega: 0.0,
        avg_final_nops: list_nops / runs as f64,
        pct_optimal: f64::NAN,
    });

    // Parallel search consistency check.
    let mut par_nops = 0f64;
    let mut par_optimal = 0usize;
    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = parallel_search(
            &ctx,
            &SearchConfig::with_lambda(lambda),
            &ParallelConfig::default(),
        );
        par_nops += f64::from(out.nops);
        par_optimal += usize::from(out.optimal);
    }
    rows.push(AblationRow {
        label: "parallel B&B".into(),
        avg_omega: f64::NAN,
        avg_final_nops: par_nops / runs as f64,
        pct_optimal: 100.0 * par_optimal as f64 / runs as f64,
    });

    rows
}

/// Render the ablation table.
pub fn render(rows: &[AblationRow]) -> TextTable {
    let mut t = TextTable::new([
        "configuration",
        "avg Ω calls",
        "avg final NOPs",
        "% optimal",
    ]);
    for r in rows {
        let fmt_nan = |v: f64, digits: usize| {
            if v.is_nan() {
                "-".to_string()
            } else {
                f(v, digits)
            }
        };
        t.row([
            r.label.clone(),
            fmt_nan(r.avg_omega, 1),
            f(r.avg_final_nops, 2),
            fmt_nan(r.pct_optimal, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_rows_are_consistent() {
        let rows = run(12, 50_000);
        let default = &rows[0];
        assert!(default.pct_optimal > 80.0);
        // All optimal-search configurations beat (or match) the bare list
        // schedule.
        let list_only = rows
            .iter()
            .find(|r| r.label == "list schedule only")
            .unwrap();
        for r in rows.iter().take(5) {
            assert!(
                r.avg_final_nops <= list_only.avg_final_nops + 1e-9,
                "{} worse than list-only",
                r.label
            );
        }
        // The greedy and list baselines are never better than optimal.
        let greedy = rows.iter().find(|r| r.label.starts_with("greedy")).unwrap();
        assert!(greedy.avg_final_nops >= default.avg_final_nops - 1e-9);
    }
}
