//! Work-stealing parallel search: speedup curve and consistency gates.
//!
//! Two questions, one experiment:
//!
//! 1. **Does it scale?** The hardest representative block is scheduled by
//!    the serial kernel and by the pool at 1, 2, 4 and 8 workers; each
//!    row records wall clock, steal/split counters, and the speedup over
//!    serial. The ≥2× gate at 4 workers only applies when the host
//!    actually has 4 cores (`std::thread::available_parallelism`) — the
//!    curve itself is always published in `BENCH_parallel.json`.
//! 2. **Is it still exact?** Every corpus block is scheduled serially and
//!    in parallel (cycling through the thread counts) — any optimal-NOP
//!    disagreement fails the gate — and a slice of the blocks runs the
//!    parallel prover, whose merged multi-worker certificate must pass
//!    the independent `pipesched-proof` checker.

use std::time::Instant;

use pipesched_core::parallel::{parallel_prove, parallel_search};
use pipesched_core::{search, ParallelConfig, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_json::{json_object, Json};
use pipesched_machine::presets;
use pipesched_synth::CorpusSpec;

use crate::experiments::blocks::block_of_size;
use crate::report::{f, TextTable};

/// Thread counts the speedup curve samples.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One point of the speedup curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadRow {
    /// Pool workers.
    pub threads: usize,
    /// Best-of-three wall clock on the hard block, microseconds.
    pub micros: u64,
    /// Optimal NOP count the pool found (must equal serial).
    pub nops: u32,
    /// Subtree tasks split off for stealing.
    pub splits: u64,
    /// Tasks actually stolen by idle workers.
    pub steals: u64,
}

/// Aggregate result of the parallel-search experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Instructions in the hard curve block.
    pub block_size: usize,
    /// Cores the host reports (`available_parallelism`).
    pub cores: usize,
    /// Serial kernel best-of-three wall clock on the hard block, µs.
    pub serial_micros: u64,
    /// Serial optimal NOP count on the hard block.
    pub serial_nops: u32,
    /// The speedup curve, one row per thread count.
    pub rows: Vec<ThreadRow>,
    /// Corpus blocks cross-checked serial vs parallel.
    pub corpus_blocks: usize,
    /// Corpus blocks where parallel disagreed with serial (must be 0).
    pub disagreements: usize,
    /// Merged multi-worker certificates replayed by the checker.
    pub certificates_checked: usize,
    /// Certificates the checker rejected (must be 0).
    pub certificates_rejected: usize,
}

impl ParallelReport {
    /// Measured speedup over serial at `threads` workers (NaN if the
    /// thread count was not sampled).
    pub fn speedup_at(&self, threads: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.threads == threads)
            .map_or(f64::NAN, |r| {
                self.serial_micros as f64 / r.micros.max(1) as f64
            })
    }

    /// True when the scaling gate applies on this host: the ≥2×-at-4
    /// claim needs 4 real cores to be testable.
    pub fn scaling_gate_applies(&self) -> bool {
        self.cores >= 4
    }

    /// The hard gates: exactness always; scaling only with enough cores.
    pub fn gates_hold(&self) -> bool {
        self.disagreements == 0
            && self.certificates_rejected == 0
            && (!self.scaling_gate_applies() || self.speedup_at(4) >= 2.0)
    }

    /// Render the experiment as a metric table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["configuration", "wall (µs)", "speedup", "splits", "steals"]);
        t.row([
            format!("serial (block of {})", self.block_size),
            self.serial_micros.to_string(),
            "1.00".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        for r in &self.rows {
            t.row([
                format!("parallel x{}", r.threads),
                r.micros.to_string(),
                f(self.serial_micros as f64 / r.micros.max(1) as f64, 2),
                r.splits.to_string(),
                r.steals.to_string(),
            ]);
        }
        t.row([
            "corpus disagreements".to_string(),
            self.disagreements.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        t.row([
            "certificates rejected".to_string(),
            format!(
                "{} of {}",
                self.certificates_rejected, self.certificates_checked
            ),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        t
    }

    /// The machine-readable `BENCH_parallel.json` document.
    pub fn to_json(&self) -> Json {
        let curve: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                json_object![
                    ("threads", r.threads as i64),
                    ("micros", r.micros as i64),
                    ("nops", i64::from(r.nops)),
                    (
                        "speedup",
                        self.serial_micros as f64 / r.micros.max(1) as f64
                    ),
                    ("splits", r.splits as i64),
                    ("steals", r.steals as i64),
                ]
            })
            .collect();
        json_object![
            ("experiment", "parallel"),
            ("block_size", self.block_size as i64),
            ("cores", self.cores as i64),
            ("serial_micros", self.serial_micros as i64),
            ("serial_nops", i64::from(self.serial_nops)),
            ("curve", Json::Array(curve)),
            ("corpus_blocks", self.corpus_blocks as i64),
            ("disagreements", self.disagreements as i64),
            ("certificates_checked", self.certificates_checked as i64),
            ("certificates_rejected", self.certificates_rejected as i64),
            ("scaling_gate_applies", self.scaling_gate_applies()),
            ("gates_hold", self.gates_hold()),
        ]
    }
}

/// Best-of-three wall clock of `body`, microseconds.
fn best_of_three<T>(mut body: impl FnMut() -> T) -> (u64, T) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..3 {
        let t = Instant::now();
        let out = body();
        best = best.min(t.elapsed().as_micros() as u64);
        last = Some(out);
    }
    (best, last.expect("three runs happened"))
}

/// Salt making `block_of_size(size, salt)` a genuinely hard search on the
/// deep-pipeline machine — picked by scanning representatives for the
/// largest completing Ω count (most blocks are proved by the seed in
/// microseconds and would measure nothing but pool overhead).
fn curve_salt(size: usize) -> u64 {
    match size {
        28 => 9, // ~28k Ω calls to prove optimal
        30 => 6, // ~76k Ω calls to prove optimal
        _ => 17,
    }
}

/// Run the speedup curve on a hard block of `curve_size` instructions and
/// the consistency gates over `runs` corpus blocks.
pub fn run(runs: usize, lambda: u64, curve_size: usize) -> ParallelReport {
    let machine = presets::paper_simulation();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // Speedup curve on one hard representative block. The deep-pipeline
    // machine's long latencies keep the bound weak, so the search tree is
    // deep enough for the pool to split real work.
    let curve_machine = presets::deep_pipeline();
    let hard = block_of_size(curve_size, curve_salt(curve_size));
    let dag = DepDag::build(&hard);
    let ctx = SchedContext::new(&hard, &dag, &curve_machine);
    let cfg = SearchConfig::with_lambda(u64::MAX);
    let (serial_micros, serial) = best_of_three(|| search(&ctx, &cfg));

    let mut disagreements = 0usize;
    let mut rows = Vec::new();
    for threads in THREADS {
        let par_cfg = ParallelConfig::with_threads(threads);
        let (micros, out) = best_of_three(|| parallel_search(&ctx, &cfg, &par_cfg));
        if !(out.optimal && out.nops == serial.nops) {
            disagreements += 1;
        }
        rows.push(ThreadRow {
            threads,
            micros,
            nops: out.nops,
            splits: out.stats.splits,
            steals: out.stats.steals,
        });
    }

    // Corpus consistency: serial vs parallel on every block, cycling
    // through the thread counts; every fourth block also runs the prover
    // and replays the merged certificate through the independent checker.
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let mut certificates_checked = 0usize;
    let mut certificates_rejected = 0usize;
    for k in 0..runs {
        let block = corpus.block(k);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let cfg = SearchConfig::with_lambda(lambda);
        let serial = search(&ctx, &cfg);
        let par_cfg = ParallelConfig::with_threads(THREADS[k % THREADS.len()]);
        let par = parallel_search(&ctx, &cfg, &par_cfg);
        if serial.optimal != par.optimal || (serial.optimal && serial.nops != par.nops) {
            disagreements += 1;
            continue;
        }
        if k % 4 == 0 && serial.optimal {
            let (proved, proof) = parallel_prove(&ctx, &cfg, &par_cfg);
            certificates_checked += 1;
            let check = pipesched_proof::check_certificate(&block, &machine, &proof.merge());
            let certified = matches!(
                check.verdict,
                pipesched_proof::ProofVerdict::OptimalCertified { nops }
                    if proved.optimal && nops == serial.nops
            );
            if !certified {
                certificates_rejected += 1;
            }
        }
    }

    ParallelReport {
        block_size: hard.len(),
        cores,
        serial_micros,
        serial_nops: serial.nops,
        rows,
        corpus_blocks: runs,
        disagreements,
        certificates_checked,
        certificates_rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_gates_hold_on_the_corpus() {
        let r = run(16, 50_000, 12);
        assert_eq!(r.corpus_blocks, 16);
        assert_eq!(r.disagreements, 0, "parallel disagrees with serial");
        assert_eq!(r.certificates_rejected, 0, "a merged certificate failed");
        assert!(r.certificates_checked >= 2);
        assert_eq!(r.rows.len(), THREADS.len());
        for row in &r.rows {
            assert_eq!(row.nops, r.serial_nops);
        }
        let doc = r.to_json();
        assert_eq!(doc.get("disagreements").and_then(Json::as_i64), Some(0));
        assert!(r.table().render().contains("corpus disagreements"));
    }
}
