//! Serving-throughput experiment: what does canonical-DAG memoization buy
//! on a workload with repeated block shapes?
//!
//! Compilers emit the same few dozen shapes over and over (inlining,
//! unrolling, macro expansion), so the workload generator stamps out
//! `shapes` distinct synthetic blocks and cycles through them, renaming
//! every variable per request — each repeat is isomorphic but textually
//! different, which is exactly the case the canonicalizer must catch. The
//! whole NDJSON batch then runs through the real service path
//! (`run_batch`, worker pool and all), and per-response timings are split
//! by cache outcome.

use pipesched_json::{json_object, Json};
use pipesched_service::{run_batch, EngineConfig, ServeConfig, ServiceEngine};
use pipesched_synth::{generate_block, FrequencyTable, GeneratorConfig};

use crate::report::{f, percentile, TextTable};

/// Measured outcome of one serving replay.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests replayed.
    pub requests: u64,
    /// Distinct block shapes in the workload.
    pub shapes: usize,
    /// Validated cache hits.
    pub cache_hits: u64,
    /// Whole-replay wall clock, microseconds.
    pub wall_micros: u64,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Per-response service times of cache hits, microseconds.
    pub hit_micros: Vec<u64>,
    /// Per-response service times of misses (live searches), microseconds.
    pub miss_micros: Vec<u64>,
}

impl ServeReport {
    /// Mean of a sample set (0 when empty).
    fn mean(samples: &[u64]) -> f64 {
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        }
    }

    /// Render the comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["outcome", "count", "mean µs", "p50 µs", "p99 µs"]);
        let mut hits = self.hit_micros.clone();
        let mut misses = self.miss_micros.clone();
        hits.sort_unstable();
        misses.sort_unstable();
        t.row([
            "cache hit".to_string(),
            hits.len().to_string(),
            f(Self::mean(&hits), 1),
            percentile(&hits, 50.0).to_string(),
            percentile(&hits, 99.0).to_string(),
        ]);
        t.row([
            "miss (search)".to_string(),
            misses.len().to_string(),
            f(Self::mean(&misses), 1),
            percentile(&misses, 50.0).to_string(),
            percentile(&misses, 99.0).to_string(),
        ]);
        t
    }

    /// Mean hit-vs-miss speedup (×), 0 when either side is empty.
    pub fn speedup(&self) -> f64 {
        let hit = Self::mean(&self.hit_micros);
        let miss = Self::mean(&self.miss_micros);
        if hit == 0.0 || miss == 0.0 {
            0.0
        } else {
            miss / hit
        }
    }
}

/// Build the NDJSON workload: `requests` lines cycling over `shapes`
/// distinct synthetic blocks, every variable renamed per request.
pub fn workload(requests: usize, shapes: usize) -> String {
    let base: Vec<String> = (0..shapes)
        .map(|k| {
            let mut cfg = GeneratorConfig::new(6 + (k % 7) * 3, 6, 3, 0x5EED ^ k as u64);
            cfg.frequencies = FrequencyTable::mul_heavy();
            generate_block(&cfg).to_string()
        })
        .collect();
    let mut out = String::new();
    for i in 0..requests {
        // Rename every variable: `#v3` becomes e.g. `#r17_v3`, keeping the
        // request isomorphic to its shape but textually distinct.
        let block = base[i % shapes].replace('#', &format!("#r{i}_"));
        let line = json_object![
            ("id", i as i64),
            ("block", block.as_str()),
            ("machine", "paper-simulation"),
        ];
        out.push_str(&line.to_compact());
        out.push('\n');
    }
    out
}

/// Replay a repeated-shapes workload through the service and split
/// response times by cache outcome.
pub fn run(requests: usize, shapes: usize, workers: usize) -> ServeReport {
    let input = workload(requests, shapes);
    let engine = ServiceEngine::new(EngineConfig::default(), 4096, 8);
    let summary = run_batch(&engine, &input, &ServeConfig { workers }, false, false)
        .expect("in-memory batch replay cannot fail on IO");

    let mut hit_micros = Vec::new();
    let mut miss_micros = Vec::new();
    for line in &summary.responses {
        let Ok(doc) = pipesched_json::parse(line) else {
            continue;
        };
        let micros = doc.get("micros").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        match doc.get("cache_hit").and_then(Json::as_bool) {
            Some(true) => hit_micros.push(micros),
            _ => miss_micros.push(micros),
        }
    }
    ServeReport {
        requests: summary.requests,
        shapes,
        cache_hits: summary.cache_hits,
        wall_micros: summary.wall_micros,
        throughput_rps: summary.throughput(),
        hit_micros,
        miss_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_hit_and_hits_are_cheaper() {
        // One worker keeps the replay sequential, so hit counts are exact;
        // with several workers a repeat can race its shape's first request
        // and miss.
        let report = run(40, 4, 1);
        assert_eq!(report.requests, 40);
        // 4 shapes, 40 requests: all 36 isomorphic repeats must hit.
        assert_eq!(report.cache_hits, 36, "hits = {}", report.cache_hits);
        assert_eq!(
            report.hit_micros.len() as u64,
            report.cache_hits,
            "per-response hit flags must agree with the cache counters"
        );
        assert!(report.throughput_rps > 0.0);
        let table = report.table().render();
        assert!(table.contains("cache hit"));
    }

    #[test]
    fn workload_renames_but_preserves_shape_count() {
        let text = workload(12, 3);
        assert_eq!(text.lines().count(), 12);
        // Renaming makes every line unique even within one shape class.
        let first = text.lines().next().unwrap();
        let fourth = text.lines().nth(3).unwrap();
        assert_ne!(first, fourth);
    }
}
