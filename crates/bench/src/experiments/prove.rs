//! Proof-logging overhead and checker throughput.
//!
//! Three questions about the certificate machinery, answered over a
//! synthetic corpus:
//!
//! 1. What does the proof plumbing cost when it is *off*?  The plain
//!    [`search`] entry point is timed twice, interleaved with the logged
//!    run; the relative delta between the two passes bounds the
//!    disabled-path cost (the acceptance gate is < 2%).
//! 2. What does in-memory certificate logging cost when it is *on*?
//! 3. How fast does the independent checker replay a certificate, and
//!    does it accept every certificate the search emits?

use std::time::Instant;

use pipesched_core::proof::ProofLogger;
use pipesched_core::{search, search_with_proof, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_proof::{check_certificate, ProofVerdict};
use pipesched_synth::CorpusSpec;

use crate::report::{f, TextTable};

/// Aggregate result of the proof experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProveReport {
    /// Corpus blocks scheduled.
    pub blocks: usize,
    /// Completed searches whose certificate the checker accepted with the
    /// search's μ.
    pub proved: usize,
    /// Certificates the checker rejected (must be zero).
    pub rejected: usize,
    /// Searches truncated by λ — a truncated transcript is not a proof,
    /// so these are skipped, not checked.
    pub truncated: usize,
    /// Total certificate events replayed by the checker.
    pub events: u64,
    /// Plain [`search`] wall-clock, first pass, microseconds.
    pub plain_micros: u64,
    /// Plain [`search`] wall-clock, second pass (the disabled-logging
    /// re-measurement), microseconds.
    pub plain_again_micros: u64,
    /// [`search_with_proof`] (in-memory logger) wall-clock, microseconds.
    pub logged_micros: u64,
    /// Checker replay wall-clock, microseconds.
    pub check_micros: u64,
}

impl ProveReport {
    /// Relative delta between the two plain-search passes, percent.  The
    /// disabled proof path is the same code both times, so this bounds
    /// its cost plus measurement noise.
    pub fn disabled_overhead_pct(&self) -> f64 {
        if self.plain_micros == 0 {
            return 0.0;
        }
        100.0 * (self.plain_again_micros as f64 - self.plain_micros as f64).abs()
            / self.plain_micros as f64
    }

    /// In-memory logging overhead relative to the faster plain pass,
    /// percent.
    pub fn logging_overhead_pct(&self) -> f64 {
        let plain = self.plain_micros.min(self.plain_again_micros);
        if plain == 0 {
            return 0.0;
        }
        100.0 * (self.logged_micros as f64 - plain as f64) / plain as f64
    }

    /// Checker replay throughput, events per second.
    pub fn checker_events_per_sec(&self) -> f64 {
        if self.check_micros == 0 {
            return 0.0;
        }
        self.events as f64 * 1e6 / self.check_micros as f64
    }
}

/// Schedule the first `runs` corpus blocks plain and with an in-memory
/// logger, time both (and a second plain pass) over the whole corpus at
/// once, then replay every complete certificate through the independent
/// checker.
pub fn run(runs: usize, lambda: u64) -> ProveReport {
    let corpus = CorpusSpec::paper_default().with_runs(runs);
    let machine = presets::paper_simulation();
    let cfg = SearchConfig {
        lambda,
        ..SearchConfig::default()
    };

    let mut report = ProveReport {
        blocks: runs,
        proved: 0,
        rejected: 0,
        truncated: 0,
        events: 0,
        plain_micros: 0,
        plain_again_micros: 0,
        logged_micros: 0,
        check_micros: 0,
    };

    let blocks: Vec<_> = (0..runs).map(|k| corpus.block(k)).collect();
    let dags: Vec<_> = blocks.iter().map(DepDag::build).collect();
    let ctxs: Vec<_> = blocks
        .iter()
        .zip(&dags)
        .map(|(b, d)| SchedContext::new(b, d, &machine))
        .collect();

    // Check the certificates first (this doubles as the warm-up for the
    // timing passes below).
    for (k, ctx) in ctxs.iter().enumerate() {
        let plain = search(ctx, &cfg);
        let (logged, proof) = search_with_proof(ctx, &cfg, ProofLogger::in_memory());
        assert_eq!(
            plain.nops, logged.nops,
            "logging changed the search result on corpus block {k}"
        );
        if !logged.optimal {
            report.truncated += 1;
            continue;
        }
        let cert = proof
            .certificate
            .expect("in-memory proof logger always yields a certificate");
        report.events += proof.events;

        let t = Instant::now();
        let check = check_certificate(&blocks[k], &machine, &cert);
        report.check_micros += t.elapsed().as_micros() as u64;
        match check.verdict {
            ProofVerdict::OptimalCertified { nops } if nops == logged.nops => report.proved += 1,
            _ => report.rejected += 1,
        }
    }

    // One timed sample covers the *whole corpus*, so each measurement is
    // tens of milliseconds and timer granularity / scheduler spikes stop
    // mattering; the three variants are interleaved per repetition (min
    // over repetitions) so clock-frequency drift hits all three alike.
    let (mut p1, mut lg, mut p2) = (u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..5 {
        let t = Instant::now();
        for ctx in &ctxs {
            let _ = search(ctx, &cfg);
        }
        p1 = p1.min(t.elapsed().as_micros() as u64);
        // The two plain passes run back to back: anything in between
        // (the 4x-longer logged pass would shift thermal / frequency
        // state) would decorrelate the pair whose delta is the gate.
        let t = Instant::now();
        for ctx in &ctxs {
            let _ = search(ctx, &cfg);
        }
        p2 = p2.min(t.elapsed().as_micros() as u64);
        let t = Instant::now();
        for ctx in &ctxs {
            let _ = search_with_proof(ctx, &cfg, ProofLogger::in_memory());
        }
        lg = lg.min(t.elapsed().as_micros() as u64);
    }
    report.plain_micros = p1;
    report.logged_micros = lg;
    report.plain_again_micros = p2;

    report
}

/// Render the proof experiment as a metric table.
pub fn render(r: &ProveReport) -> TextTable {
    let mut t = TextTable::new(["metric", "value"]);
    t.row(["corpus blocks".to_string(), r.blocks.to_string()]);
    t.row(["certificates accepted".to_string(), r.proved.to_string()]);
    t.row(["certificates rejected".to_string(), r.rejected.to_string()]);
    t.row([
        "truncated (not checked)".to_string(),
        r.truncated.to_string(),
    ]);
    t.row(["certificate events".to_string(), r.events.to_string()]);
    t.row([
        "plain search, pass 1 (ms)".to_string(),
        f(r.plain_micros as f64 / 1e3, 1),
    ]);
    t.row([
        "plain search, pass 2 (ms)".to_string(),
        f(r.plain_again_micros as f64 / 1e3, 1),
    ]);
    t.row([
        "logged search (ms)".to_string(),
        f(r.logged_micros as f64 / 1e3, 1),
    ]);
    t.row([
        "checker replay (ms)".to_string(),
        f(r.check_micros as f64 / 1e3, 1),
    ]);
    t.row([
        "disabled-path delta (%)".to_string(),
        f(r.disabled_overhead_pct(), 2),
    ]);
    t.row([
        "logging overhead (%)".to_string(),
        f(r.logging_overhead_pct(), 2),
    ]);
    t.row([
        "checker throughput (events/s)".to_string(),
        f(r.checker_events_per_sec(), 0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_complete_certificate_is_accepted() {
        let r = run(12, 50_000);
        assert_eq!(r.blocks, 12);
        assert_eq!(r.rejected, 0, "checker rejected a search certificate");
        assert!(r.proved >= 1, "no block completed at lambda 50k");
        assert_eq!(r.proved + r.truncated, r.blocks);
        assert!(r.events > 0);
        assert!(r.checker_events_per_sec() > 0.0);
        let table = render(&r);
        assert!(table.render().contains("certificates accepted"));
    }
}
