//! Table 1: search-space size for representative example blocks under the
//! three search regimes — exhaustive (`n!`), legality-only pruning, and the
//! proposed pruning.

use pipesched_core::baselines::{enumerate_legal, exhaustive_calls_approx};
use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;

use crate::experiments::blocks::block_of_size;
use crate::report::{sci, TextTable};

/// The block sizes of the paper's Table 1, in order (13 and 16 appear
/// multiple times with different blocks).
pub const PAPER_SIZES: [usize; 11] = [8, 11, 13, 13, 14, 16, 16, 16, 20, 21, 22];

/// Cap on the legality-only enumeration, matching the paper's
/// `>9,999,000` entry.
pub const LEGALITY_CAP: u64 = 9_999_000;

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Instructions in the block.
    pub size: usize,
    /// `n!` (approximate for display).
    pub exhaustive: f64,
    /// Complete legal schedules (capped at [`LEGALITY_CAP`]).
    pub legality_calls: u64,
    /// True when the legality enumeration hit the cap.
    pub legality_capped: bool,
    /// Ω calls of the paper-exact proposed search (plain α-β, rule [5c]),
    /// capped at [`LEGALITY_CAP`].
    pub paper_calls: u64,
    /// True when the paper-exact search completed within the cap.
    pub paper_optimal: bool,
    /// Ω calls of the library-default search (critical-path bound +
    /// lower-bound termination). Zero means the initial list schedule was
    /// proven optimal without any search.
    pub proposed_calls: u64,
    /// True when the proposed search completed (it should).
    pub proposed_optimal: bool,
}

/// Compute Table 1 for the paper's row sizes.
pub fn run() -> Vec<Table1Row> {
    run_for_sizes(&PAPER_SIZES)
}

/// Compute Table 1 rows for arbitrary sizes. Rows with the same size get
/// different representative blocks (salted by their index).
pub fn run_for_sizes(sizes: &[usize]) -> Vec<Table1Row> {
    let machine = presets::paper_simulation();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let block = block_of_size(size, i as u64 + 1);
            let dag = DepDag::build(&block);
            let ctx = SchedContext::new(&block, &dag, &machine);

            let legality = enumerate_legal(&ctx, LEGALITY_CAP);
            let paper = search(
                &ctx,
                &SearchConfig {
                    lambda: LEGALITY_CAP,
                    ..SearchConfig::paper_exact()
                },
            );
            let proposed = search(&ctx, &SearchConfig::with_lambda(u64::MAX));
            if paper.optimal {
                assert_eq!(
                    paper.nops, proposed.nops,
                    "bound strengthening changed the optimum"
                );
            }
            debug_assert!(
                !legality.truncated || proposed.nops <= legality.best_nops,
                "proposed search must match or beat the capped enumeration"
            );
            if !legality.truncated {
                assert_eq!(
                    proposed.nops, legality.best_nops,
                    "proposed pruning lost the optimum on a size-{size} block"
                );
            }

            Table1Row {
                size,
                exhaustive: exhaustive_calls_approx(size),
                legality_calls: legality.omega_calls,
                legality_capped: legality.truncated,
                paper_calls: paper.stats.omega_calls,
                paper_optimal: paper.optimal,
                proposed_calls: proposed.stats.omega_calls,
                proposed_optimal: proposed.optimal,
            }
        })
        .collect()
}

/// Render rows in the paper's Table 1 layout.
pub fn render(rows: &[Table1Row]) -> TextTable {
    let mut t = TextTable::new([
        "Instructions In Block",
        "Exhaustive Search Calls",
        "Pruning Illegal Calls",
        "Paper Pruning Calls",
        "Proposed (+CP bound) Calls",
    ]);
    for r in rows {
        t.row([
            r.size.to_string(),
            sci(r.exhaustive),
            if r.legality_capped {
                format!(">{}", r.legality_calls)
            } else {
                r.legality_calls.to_string()
            },
            if r.paper_optimal {
                r.paper_calls.to_string()
            } else {
                format!(">{}", r.paper_calls)
            },
            r.proposed_calls.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_hierarchy_holds() {
        // Run a reduced set of sizes to keep the test fast; the shape must
        // match the paper: proposed ≪ legality-only ≪ n!.
        let rows = run_for_sizes(&[8, 11, 13]);
        for r in &rows {
            assert!(r.proposed_optimal, "size {} truncated", r.size);
            assert!(
                (r.legality_calls as f64) < r.exhaustive,
                "legality pruning must beat n! at size {}",
                r.size
            );
            // The proposed search counts incremental placements, the
            // legality baseline complete schedules; the aggregate claim is
            // orders of magnitude, checked loosely per-row.
            assert!(
                (r.proposed_calls as f64) < r.exhaustive / 100.0,
                "proposed pruning barely beats n! at size {}",
                r.size
            );
        }
    }

    #[test]
    fn render_matches_paper_format() {
        let rows = run_for_sizes(&[8]);
        let table = render(&rows);
        let text = table.render();
        assert!(text.contains("Paper Pruning Calls"));
        assert!(text.contains("40320"));
    }
}
