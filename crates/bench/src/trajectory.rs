//! The continuous perf-regression observatory.
//!
//! `repro bench` runs the serve / parallel / solve / prove experiments a
//! few times each, condenses every metric to a median and inter-quartile
//! range, and appends one schema-versioned [`Record`] to
//! `BENCH_trajectory.json`. Records carry a *date-free* monotonic
//! sequence number (last seq + 1), the short git revision, and a machine
//! fingerprint — enough provenance to diff runs without ever parsing a
//! timestamp.
//!
//! `repro compare --baseline FILE` diffs the newest trajectory record
//! against a pinned baseline record metric by metric. Each metric ships
//! its own noise tolerance; correctness counters (disagreements, audit
//! failures, rejected certificates) carry a **zero** tolerance so any
//! nonzero value is a regression regardless of how noisy the machine is.
//! Timing metrics double their tolerance when the machine fingerprints
//! differ — a different host is allowed to be slower, not broken.

use std::collections::BTreeMap;

use pipesched_json::{json_object, Json};

/// Version stamp written into every record; bump on breaking layout
/// changes so `compare` can refuse to diff across schemas.
pub const SCHEMA_VERSION: i64 = 1;

/// One measured metric: the median over this run's samples, the
/// inter-quartile range as a spread estimate, the direction that counts
/// as *better*, and the relative noise tolerance `compare` grants it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// Median over the run's samples.
    pub median: f64,
    /// Inter-quartile range over the samples (0 with < 4 samples' worth
    /// of spread).
    pub iqr: f64,
    /// Whether larger values are improvements (throughput) rather than
    /// regressions (latency, failure counts).
    pub higher_is_better: bool,
    /// Allowed relative degradation, percent. **0 means exact**: any
    /// degradation at all fails, which is how correctness counters are
    /// gated (baseline 0, tolerance 0 → any nonzero value regresses).
    pub tolerance_pct: f64,
}

impl Metric {
    /// Condense samples into a median + IQR metric.
    pub fn from_samples(samples: &[f64], higher_is_better: bool, tolerance_pct: f64) -> Metric {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |frac: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() - 1) as f64 * frac).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Metric {
            median: q(0.5),
            iqr: q(0.75) - q(0.25),
            higher_is_better,
            tolerance_pct,
        }
    }

    fn to_json(self) -> Json {
        json_object![
            ("median", self.median),
            ("iqr", self.iqr),
            ("higher_is_better", self.higher_is_better),
            ("tolerance_pct", self.tolerance_pct),
        ]
    }

    fn from_json(doc: &Json) -> Option<Metric> {
        Some(Metric {
            median: doc.get("median").and_then(Json::as_f64)?,
            iqr: doc.get("iqr").and_then(Json::as_f64)?,
            higher_is_better: doc.get("higher_is_better").and_then(Json::as_bool)?,
            tolerance_pct: doc.get("tolerance_pct").and_then(Json::as_f64)?,
        })
    }
}

/// The machine a record was measured on. Timing comparisons across
/// differing fingerprints double their tolerance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cores: usize,
}

impl Fingerprint {
    /// Fingerprint of the machine running right now.
    pub fn current() -> Fingerprint {
        Fingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1),
        }
    }

    fn to_json(&self) -> Json {
        json_object![
            ("os", self.os.as_str()),
            ("arch", self.arch.as_str()),
            ("cores", self.cores as i64),
        ]
    }

    fn from_json(doc: &Json) -> Option<Fingerprint> {
        Some(Fingerprint {
            os: doc.get("os").and_then(Json::as_str)?.to_string(),
            arch: doc.get("arch").and_then(Json::as_str)?.to_string(),
            cores: doc.get("cores").and_then(Json::as_i64)? as usize,
        })
    }
}

/// Per-metric results of one experiment, keyed by metric name.
pub type Metrics = BTreeMap<String, Metric>;

/// One appended observatory record: everything `compare` needs to diff
/// two points on the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// Date-free monotonic sequence number: previous record's + 1.
    pub seq: u64,
    /// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// Machine the record was measured on.
    pub fingerprint: Fingerprint,
    /// Whether the run used the reduced `--quick` sample sizes.
    pub quick: bool,
    /// Experiment name → metric name → measurement.
    pub experiments: BTreeMap<String, Metrics>,
}

impl Record {
    /// A fresh record for the current machine/revision at `seq`.
    pub fn new(seq: u64, quick: bool) -> Record {
        Record {
            schema_version: SCHEMA_VERSION,
            seq,
            git_rev: git_rev(),
            fingerprint: Fingerprint::current(),
            quick,
            experiments: BTreeMap::new(),
        }
    }

    /// JSON for the trajectory file.
    pub fn to_json(&self) -> Json {
        let experiments = Json::Object(
            self.experiments
                .iter()
                .map(|(name, metrics)| {
                    let obj = Json::Object(
                        metrics
                            .iter()
                            .map(|(m, v)| (m.clone(), v.to_json()))
                            .collect(),
                    );
                    (name.clone(), obj)
                })
                .collect(),
        );
        json_object![
            ("schema_version", self.schema_version),
            ("seq", self.seq as i64),
            ("git_rev", self.git_rev.as_str()),
            ("fingerprint", self.fingerprint.to_json()),
            ("quick", self.quick),
            ("experiments", experiments),
        ]
    }

    /// Parse a record back; `None` on layout mismatch.
    pub fn from_json(doc: &Json) -> Option<Record> {
        let schema_version = doc.get("schema_version").and_then(Json::as_i64)?;
        let mut experiments = BTreeMap::new();
        if let Some(Json::Object(pairs)) = doc.get("experiments") {
            for (name, metrics_doc) in pairs {
                let mut metrics = Metrics::new();
                if let Json::Object(ms) = metrics_doc {
                    for (metric_name, m) in ms {
                        metrics.insert(metric_name.clone(), Metric::from_json(m)?);
                    }
                }
                experiments.insert(name.clone(), metrics);
            }
        }
        Some(Record {
            schema_version,
            seq: doc.get("seq").and_then(Json::as_i64)? as u64,
            git_rev: doc.get("git_rev").and_then(Json::as_str)?.to_string(),
            fingerprint: Fingerprint::from_json(doc.get("fingerprint")?)?,
            quick: doc.get("quick").and_then(Json::as_bool)?,
            experiments,
        })
    }

    /// Add one experiment's metrics.
    pub fn insert(&mut self, experiment: &str, metrics: Metrics) {
        self.experiments.insert(experiment.to_string(), metrics);
    }
}

/// `git rev-parse --short HEAD`, or `unknown` when git or the checkout
/// is unavailable (the observatory must work from a tarball too).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parse a trajectory document: either `{"schema_version":…,
/// "records":[…]}` or a bare record object (a pinned baseline file).
pub fn parse_trajectory(text: &str) -> Result<Vec<Record>, String> {
    let doc = pipesched_json::parse(text).map_err(|e| format!("bad trajectory JSON: {e}"))?;
    let records_json: Vec<&Json> = match doc.get("records") {
        Some(Json::Array(items)) => items.iter().collect(),
        Some(other) => return Err(format!("`records` must be an array, got {other:?}")),
        None => vec![&doc],
    };
    let mut records = Vec::with_capacity(records_json.len());
    for r in records_json {
        records.push(Record::from_json(r).ok_or("malformed trajectory record")?);
    }
    Ok(records)
}

/// Read the trajectory file; a missing file is an empty trajectory.
pub fn load(path: &str) -> Result<Vec<Record>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("read {path}: {e}")),
    }
}

/// Render records as the trajectory document.
pub fn render(records: &[Record]) -> String {
    let doc = json_object![
        ("schema_version", SCHEMA_VERSION),
        (
            "records",
            Json::Array(records.iter().map(Record::to_json).collect())
        ),
    ];
    doc.to_pretty() + "\n"
}

/// Append `record` to the trajectory at `path` (created if missing).
pub fn append(path: &str, record: Record) -> Result<(), String> {
    let mut records = load(path)?;
    records.push(record);
    std::fs::write(path, render(&records)).map_err(|e| format!("write {path}: {e}"))
}

/// The next date-free sequence number for a trajectory.
pub fn next_seq(records: &[Record]) -> u64 {
    records.iter().map(|r| r.seq).max().map_or(1, |s| s + 1)
}

/// One metric's baseline-vs-candidate verdict.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// `experiment/metric` path.
    pub name: String,
    /// Baseline median.
    pub base: f64,
    /// Candidate median (`None` when the metric vanished — a regression).
    pub new: Option<f64>,
    /// Relative change, percent, signed so that positive = degradation.
    pub degradation_pct: f64,
    /// Tolerance actually applied (metric's own, floored by the CLI's,
    /// doubled across differing machine fingerprints — except exact
    /// zero-tolerance gates, which never loosen).
    pub tolerance_pct: f64,
    /// Whether this metric regressed beyond its tolerance.
    pub regressed: bool,
}

/// Baseline-vs-candidate comparison: every baseline metric diffed.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-metric verdicts, trajectory order.
    pub diffs: Vec<MetricDiff>,
    /// Count of regressed metrics; nonzero fails the gate.
    pub regressions: usize,
}

/// Diff `candidate` against `baseline`. `floor_tolerance_pct` raises
/// every *nonzero* metric tolerance to at least that much; exact gates
/// (tolerance 0) are never loosened by the floor or the fingerprint.
pub fn compare(baseline: &Record, candidate: &Record, floor_tolerance_pct: f64) -> Comparison {
    let mut diffs = Vec::new();
    let cross_machine = baseline.fingerprint != candidate.fingerprint;
    for (experiment, metrics) in &baseline.experiments {
        for (metric_name, base) in metrics {
            let name = format!("{experiment}/{metric_name}");
            let exact = base.tolerance_pct == 0.0;
            let mut tolerance = if exact {
                0.0
            } else {
                base.tolerance_pct.max(floor_tolerance_pct)
            };
            if cross_machine && !exact {
                tolerance *= 2.0;
            }
            let candidate_metric = candidate
                .experiments
                .get(experiment)
                .and_then(|m| m.get(metric_name));
            let Some(cand) = candidate_metric else {
                diffs.push(MetricDiff {
                    name,
                    base: base.median,
                    new: None,
                    degradation_pct: f64::INFINITY,
                    tolerance_pct: tolerance,
                    regressed: true,
                });
                continue;
            };
            let degradation_pct = if base.median == 0.0 {
                // An exact-zero baseline: any movement in the bad
                // direction is 100% worse, improvement is 0.
                let worse = if base.higher_is_better {
                    cand.median < 0.0
                } else {
                    cand.median > 0.0
                };
                if worse {
                    100.0
                } else {
                    0.0
                }
            } else {
                let rel = 100.0 * (cand.median - base.median) / base.median.abs();
                if base.higher_is_better {
                    -rel
                } else {
                    rel
                }
            };
            diffs.push(MetricDiff {
                name,
                base: base.median,
                new: Some(cand.median),
                degradation_pct,
                tolerance_pct: tolerance,
                regressed: degradation_pct > tolerance,
            });
        }
    }
    let regressions = diffs.iter().filter(|d| d.regressed).count();
    Comparison { diffs, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(median: f64, higher: bool, tol: f64) -> Metric {
        Metric {
            median,
            iqr: 0.0,
            higher_is_better: higher,
            tolerance_pct: tol,
        }
    }

    fn record_with(seq: u64, entries: &[(&str, &str, Metric)]) -> Record {
        let mut r = Record::new(seq, true);
        for (exp, name, m) in entries {
            r.experiments
                .entry(exp.to_string())
                .or_default()
                .insert(name.to_string(), *m);
        }
        r
    }

    #[test]
    fn records_round_trip_through_json() {
        let r = record_with(
            3,
            &[
                ("serve", "throughput_rps", metric(120_000.0, true, 50.0)),
                ("solve", "disagreements", metric(0.0, false, 0.0)),
            ],
        );
        let text = render(std::slice::from_ref(&r));
        let back = parse_trajectory(&text).unwrap();
        assert_eq!(back, vec![r.clone()]);
        // A bare record (pinned baseline file) parses too.
        let bare = parse_trajectory(&r.to_json().to_pretty()).unwrap();
        assert_eq!(bare, vec![r]);
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_date_free() {
        assert_eq!(next_seq(&[]), 1);
        let r1 = record_with(1, &[]);
        let r7 = record_with(7, &[]);
        assert_eq!(next_seq(&[r1, r7]), 8);
    }

    #[test]
    fn medians_and_iqr_come_from_the_samples() {
        let m = Metric::from_samples(&[10.0, 30.0, 20.0], false, 50.0);
        assert_eq!(m.median, 20.0);
        // Nearest-rank quartiles on 3 samples: q25 = 20, q75 = 30.
        assert_eq!(m.iqr, 10.0);
        let m = Metric::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], false, 50.0);
        assert_eq!(m.median, 3.0);
        assert_eq!(m.iqr, 2.0);
        let lone = Metric::from_samples(&[42.0], true, 10.0);
        assert_eq!(lone.median, 42.0);
        assert_eq!(lone.iqr, 0.0);
    }

    #[test]
    fn within_tolerance_changes_pass() {
        let base = record_with(1, &[("serve", "rps", metric(100_000.0, true, 25.0))]);
        let cand = record_with(2, &[("serve", "rps", metric(80_000.0, true, 25.0))]);
        let cmp = compare(&base, &cand, 25.0);
        assert_eq!(cmp.regressions, 0, "{:?}", cmp.diffs);
        // Improvements never regress, however large.
        let better = record_with(2, &[("serve", "rps", metric(500_000.0, true, 25.0))]);
        assert_eq!(compare(&base, &better, 25.0).regressions, 0);
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = record_with(1, &[("serve", "rps", metric(100_000.0, true, 25.0))]);
        // A fake degraded record: throughput halved, well past 25%.
        let cand = record_with(2, &[("serve", "rps", metric(50_000.0, true, 25.0))]);
        let cmp = compare(&base, &cand, 25.0);
        assert_eq!(cmp.regressions, 1);
        assert!(cmp.diffs[0].regressed);
        assert!((cmp.diffs[0].degradation_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn lower_is_better_metrics_regress_upward() {
        let base = record_with(1, &[("solve", "bnb_micros", metric(1_000.0, false, 30.0))]);
        let slower = record_with(2, &[("solve", "bnb_micros", metric(1_600.0, false, 30.0))]);
        assert_eq!(compare(&base, &slower, 0.0).regressions, 1);
        let faster = record_with(2, &[("solve", "bnb_micros", metric(400.0, false, 30.0))]);
        assert_eq!(compare(&base, &faster, 0.0).regressions, 0);
    }

    #[test]
    fn exact_zero_gates_tolerate_nothing() {
        let base = record_with(1, &[("solve", "disagreements", metric(0.0, false, 0.0))]);
        let bad = record_with(2, &[("solve", "disagreements", metric(1.0, false, 0.0))]);
        // Neither a generous CLI floor nor a foreign fingerprint loosens
        // an exact gate.
        let mut foreign = bad.clone();
        foreign.fingerprint.cores += 64;
        assert_eq!(compare(&base, &bad, 1_000.0).regressions, 1);
        assert_eq!(compare(&base, &foreign, 1_000.0).regressions, 1);
        let clean = record_with(2, &[("solve", "disagreements", metric(0.0, false, 0.0))]);
        assert_eq!(compare(&base, &clean, 0.0).regressions, 0);
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = record_with(1, &[("serve", "rps", metric(100_000.0, true, 25.0))]);
        let empty = record_with(2, &[]);
        let cmp = compare(&base, &empty, 25.0);
        assert_eq!(cmp.regressions, 1);
        assert!(cmp.diffs[0].new.is_none());
    }

    #[test]
    fn foreign_fingerprint_doubles_noise_tolerance() {
        let base = record_with(1, &[("serve", "rps", metric(100_000.0, true, 25.0))]);
        let mut cand = record_with(2, &[("serve", "rps", metric(60_000.0, true, 25.0))]);
        // 40% degradation: fails at 25% on the same machine…
        assert_eq!(compare(&base, &cand, 0.0).regressions, 1);
        // …passes at the doubled 50% across machines.
        cand.fingerprint.cores += 64;
        assert_eq!(compare(&base, &cand, 0.0).regressions, 0);
    }
}
