//! `lint-atomics` — source lint for undocumented `Ordering::Relaxed`.
//!
//! The concurrency-audit discipline (see `crates/core/src/parallel.rs`,
//! "# Concurrency checking"): every *publishing* atomic operation that
//! uses `Ordering::Relaxed` must carry a `// relaxed-ok:` comment — on
//! the same line or within the few lines above — stating the invariant
//! that makes the missing ordering sound (monotone pruning bound, pure
//! counter read after join, flag with no payload, ...). Publishing
//! operations are stores and read-modify-writes whose result other
//! threads may act on:
//!
//! ```text
//! store  swap  fetch_min  fetch_max  fetch_or  fetch_and
//! compare_exchange  compare_exchange_weak
//! ```
//!
//! Plain `load`, `fetch_add` and `fetch_sub` are exempt: relaxed loads
//! of monotone values and statistics counters are the idiomatic sound
//! uses and annotating each would be noise. The model checker
//! (`crates/check`) is the dynamic complement — it *proves* specific
//! protocols; this lint keeps the documentation honest everywhere else.
//!
//! Scans `crates/` and `src/` of the workspace (or the roots given as
//! arguments), skipping `crates/check` (whose instrumented sync and
//! mutation fixtures use raw orderings by design) and `target/`. Exits
//! nonzero listing every undocumented site.

use std::path::{Path, PathBuf};

/// Publishing operations that require justification under `Relaxed`.
const PUBLISHING_OPS: &[&str] = &[
    ".store(",
    ".swap(",
    ".fetch_min(",
    ".fetch_max(",
    ".fetch_or(",
    ".fetch_and(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

/// How many preceding lines a `// relaxed-ok:` comment may sit above the
/// operation it justifies (a comment block plus a short `if`).
const COMMENT_WINDOW: usize = 10;

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "check" && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// An undocumented relaxed publishing operation.
struct Finding {
    file: String,
    line: usize,
    text: String,
}

fn scan_file(label: &str, src: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if !line.contains("Relaxed") {
            continue;
        }
        // Only code, not comments or the lint's own tables.
        let code = line.split("//").next().unwrap_or("");
        if !code.contains("Relaxed") || !PUBLISHING_OPS.iter().any(|op| code.contains(op)) {
            continue;
        }
        let documented = line.contains("relaxed-ok:")
            || lines[i.saturating_sub(COMMENT_WINDOW)..i]
                .iter()
                .any(|l| l.trim_start().starts_with("//") && l.contains("relaxed-ok:"));
        if !documented {
            findings.push(Finding {
                file: label.to_string(),
                line: i + 1,
                text: line.trim().to_string(),
            });
        }
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec!["crates".into(), "src".into()]
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            collect_rs_files(root, &mut files);
        }
    }

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        scanned += 1;
        scan_file(&path.display().to_string(), &src, &mut findings);
    }

    if findings.is_empty() {
        println!("lint-atomics: ok ({scanned} file(s), every relaxed publishing op documented)");
        return std::process::ExitCode::SUCCESS;
    }
    eprintln!(
        "lint-atomics: {} undocumented Ordering::Relaxed publishing op(s):",
        findings.len()
    );
    for f in &findings {
        eprintln!("  {}:{}: {}", f.file, f.line, f.text);
    }
    eprintln!("  add a `// relaxed-ok: <invariant>` comment or upgrade the ordering");
    std::process::ExitCode::FAILURE
}
