//! `repro` — regenerate every table and figure of Nisar & Dietz (1990).
//!
//! ```text
//! repro all       [--runs N] [--lambda L] [--threads T] [--out DIR]
//! repro table1
//! repro table7    [--runs N] ...
//! repro fig1|fig4|fig5|fig6|fig7
//! repro ablation  [--runs N]
//! repro windowed  [--runs N]
//! repro encodings [--runs N]
//! repro serve     [--runs N] [--threads T]   # memoized serving throughput
//! repro prove     [--runs N]   # proof-logging overhead + checker throughput
//! repro solve     [--runs N] [--quick]   # SAT-vs-B&B cross-certification + BENCH_solve.json
//! repro parallel  [--runs N] [--quick]   # work-stealing speedup curve + BENCH_parallel.json
//! repro observe   [--runs N] [--quick]   # tracing overhead gate + BENCH_sched.json
//! repro verify    [--runs N]   # full end-to-end invariant gate
//! repro bench     [--quick] [--save-baseline FILE]   # observatory run → BENCH_trajectory.json
//! repro compare   --baseline FILE [--tolerance PCT]  # diff newest record vs baseline
//! ```
//!
//! `table7` and the figures share one corpus sweep; running `all` performs
//! the sweep once and derives everything from it. Output goes to
//! `results/` as aligned text and CSV.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pipesched_bench::experiments::{
    ablation, encodings, observe, parallel, prove, serve, solve, sweep, table1, verify_sweep,
    windowed,
};
use pipesched_bench::report::{f, percentile, TextTable};
use pipesched_bench::{run_sweep, trajectory, RunRecord, SweepConfig, SweepResult};
use pipesched_synth::CorpusSpec;

struct Args {
    command: String,
    runs: usize,
    lambda: u64,
    threads: usize,
    out: PathBuf,
    quick: bool,
    baseline: Option<String>,
    tolerance_pct: f64,
    save_baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut parsed = Args {
        command,
        runs: 16_000,
        lambda: 50_000,
        threads: 0,
        out: PathBuf::from("results"),
        quick: false,
        baseline: None,
        tolerance_pct: 25.0,
        save_baseline: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} requires a value"))
        };
        match flag.as_str() {
            "--runs" => parsed.runs = value()?.parse().map_err(|e| format!("--runs: {e}"))?,
            "--lambda" => parsed.lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--threads" => {
                parsed.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--out" => parsed.out = PathBuf::from(value()?),
            "--quick" => parsed.quick = true,
            "--baseline" => parsed.baseline = Some(value()?),
            "--save-baseline" => parsed.save_baseline = Some(value()?),
            "--tolerance" => {
                let raw = value()?;
                parsed.tolerance_pct = raw
                    .trim_end_matches('%')
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if parsed.tolerance_pct < 0.0 {
                    return Err("--tolerance must be non-negative".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "table1" => run_table1(&args),
        "table7" | "fig1" | "fig4" | "fig5" | "fig6" | "fig7" => {
            let result = do_sweep(&args);
            match args.command.as_str() {
                "table7" => run_table7(&args, &result),
                "fig1" => run_fig1(&args, &result),
                "fig4" => run_fig4(&args, &result),
                "fig5" => run_fig5(&args, &result),
                "fig6" => run_fig6(&args, &result),
                "fig7" => run_fig7(&args, &result),
                _ => unreachable!(),
            }
        }
        "ablation" => run_ablation(&args),
        "windowed" => run_windowed(&args),
        "encodings" => run_encodings(&args),
        "serve" => run_serve(&args),
        "prove" => run_prove(&args),
        "solve" => {
            if !run_solve(&args) {
                return ExitCode::FAILURE;
            }
        }
        "observe" => {
            if !run_observe(&args) {
                return ExitCode::FAILURE;
            }
        }
        "parallel" => {
            if !run_parallel(&args) {
                return ExitCode::FAILURE;
            }
        }
        "bench" => {
            if !run_bench(&args) {
                return ExitCode::FAILURE;
            }
        }
        "compare" => {
            if !run_compare(&args) {
                return ExitCode::FAILURE;
            }
        }
        "verify" => {
            let runs = args.runs.min(2_000);
            eprintln!("verify: full end-to-end gate over {runs} blocks...");
            let report = verify_sweep::run(runs, args.lambda);
            println!(
                "verified {} blocks ({} provably optimal), {} instructions, {} NOPs total — all invariants hold",
                report.blocks, report.optimal, report.instructions, report.nops
            );
        }
        "all" => {
            run_table1(&args);
            let result = do_sweep(&args);
            run_table7(&args, &result);
            run_fig1(&args, &result);
            run_fig4(&args, &result);
            run_fig5(&args, &result);
            run_fig6(&args, &result);
            run_fig7(&args, &result);
            let ablation_args = Args {
                runs: args.runs.min(200),
                ..copy_args(&args)
            };
            run_ablation(&ablation_args);
            run_windowed(&ablation_args);
            run_encodings(&ablation_args);
            run_serve(&ablation_args);
            run_prove(&ablation_args);
            run_solve(&ablation_args);
            run_observe(&ablation_args);
            run_parallel(&ablation_args);
        }
        other => {
            eprintln!(
                "repro: unknown command `{other}`\n\
                 commands: all table1 table7 fig1 fig4 fig5 fig6 fig7 ablation windowed encodings serve prove solve observe parallel verify bench compare"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn copy_args(a: &Args) -> Args {
    Args {
        command: a.command.clone(),
        runs: a.runs,
        lambda: a.lambda,
        threads: a.threads,
        out: a.out.clone(),
        quick: a.quick,
        baseline: a.baseline.clone(),
        tolerance_pct: a.tolerance_pct,
        save_baseline: a.save_baseline.clone(),
    }
}

fn do_sweep(args: &Args) -> SweepResult {
    let config = SweepConfig {
        corpus: CorpusSpec::paper_default().with_runs(args.runs),
        lambda: args.lambda,
        threads: args.threads,
        ..SweepConfig::default()
    };
    eprintln!(
        "sweep: scheduling {} blocks (lambda={}, validating against the simulator)...",
        args.runs, args.lambda
    );
    let start = Instant::now();
    let result = run_sweep(&config);
    eprintln!(
        "sweep: done in {:.1}s ({:.0} blocks/s)",
        start.elapsed().as_secs_f64(),
        args.runs as f64 / start.elapsed().as_secs_f64()
    );
    result
}

fn save(args: &Args, name: &str, table: &TextTable, caption: &str) {
    println!("\n== {caption} ==\n{}", table.render());
    table.save(&args.out, name).expect("write results");
    println!("(saved to {}/{name}.txt and .csv)", args.out.display());
}

fn run_table1(args: &Args) {
    eprintln!("table1: three search regimes on representative blocks...");
    let rows = table1::run();
    let table = table1::render(&rows);
    save(
        args,
        "table1_search_space",
        &table,
        "Table 1: Search Space for Representative Examples",
    );
}

fn run_table7(args: &Args, result: &SweepResult) {
    let completed: Vec<&RunRecord> = result.records.iter().filter(|r| r.completed).collect();
    let truncated: Vec<&RunRecord> = result.records.iter().filter(|r| !r.completed).collect();
    let all_agg = sweep::aggregate(result.records.iter());
    let c = sweep::aggregate(completed.iter().copied());
    let t = sweep::aggregate(truncated.iter().copied());
    let total = result.records.len().max(1);

    let mut table = TextTable::new([
        "",
        "Search Completed (Optimal)",
        "Search Truncated (Suboptimal?)",
        "Totals",
    ]);
    table.row([
        "Number of Runs".to_string(),
        c.runs.to_string(),
        t.runs.to_string(),
        total.to_string(),
    ]);
    table.row([
        "Percentage of Runs".to_string(),
        format!("{}%", f(100.0 * c.runs as f64 / total as f64, 2)),
        format!("{}%", f(100.0 * t.runs as f64 / total as f64, 2)),
        "100%".to_string(),
    ]);
    table.row([
        "Avg. Instructions/Block".to_string(),
        f(c.avg_instructions, 2),
        f(t.avg_instructions, 2),
        f(all_agg.avg_instructions, 2),
    ]);
    table.row([
        "Avg. Initial NOPs".to_string(),
        f(c.avg_initial_nops, 2),
        f(t.avg_initial_nops, 2),
        f(all_agg.avg_initial_nops, 2),
    ]);
    table.row([
        "Avg. Final NOPs".to_string(),
        f(c.avg_final_nops, 2),
        f(t.avg_final_nops, 2),
        f(all_agg.avg_final_nops, 2),
    ]);
    table.row([
        "Avg. Omega Calls".to_string(),
        f(c.avg_omega, 1),
        f(t.avg_omega, 1),
        f(all_agg.avg_omega, 1),
    ]);
    table.row([
        "Avg. Search Time".to_string(),
        format!("{:?}", c.avg_time),
        format!("{:?}", t.avg_time),
        format!("{:?}", all_agg.avg_time),
    ]);
    save(
        args,
        "table7_summary",
        &table,
        &format!("Table 7: Statistics for Scheduling {total} Blocks"),
    );
}

/// Per-block-size aggregation used by several figures.
fn by_size(records: &[RunRecord]) -> BTreeMap<usize, Vec<&RunRecord>> {
    let mut map: BTreeMap<usize, Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        map.entry(r.block_size).or_default().push(r);
    }
    map
}

fn run_fig1(args: &Args, result: &SweepResult) {
    // Scatter data: one row per completed run.
    let mut scatter = TextTable::new(["block_size", "omega_calls"]);
    for r in result.records.iter().filter(|r| r.completed) {
        scatter.row([r.block_size.to_string(), r.omega_calls.to_string()]);
    }
    scatter
        .save(&args.out, "fig1_scatter")
        .expect("write results");

    // Per-size summary for reading.
    let mut table = TextTable::new([
        "block size",
        "completed runs",
        "avg Ω",
        "median Ω",
        "p95 Ω",
        "max Ω",
    ]);
    for (size, rs) in by_size(&result.records) {
        let done: Vec<_> = rs.iter().filter(|r| r.completed).collect();
        if done.is_empty() {
            continue;
        }
        let omegas: Vec<u64> = done.iter().map(|r| r.omega_calls).collect();
        let avg = omegas.iter().sum::<u64>() as f64 / omegas.len() as f64;
        table.row([
            size.to_string(),
            done.len().to_string(),
            f(avg, 1),
            percentile(&omegas, 50.0).to_string(),
            percentile(&omegas, 95.0).to_string(),
            omegas.iter().copied().max().unwrap().to_string(),
        ]);
    }
    save(
        args,
        "fig1_schedules_searched",
        &table,
        "Figure 1: Schedules Searched vs Block Size (completed runs; scatter in fig1_scatter.csv)",
    );
}

fn run_fig4(args: &Args, result: &SweepResult) {
    let mut table = TextTable::new(["block size", "runs", "avg initial NOPs", "avg final NOPs"]);
    for (size, rs) in by_size(&result.records) {
        let n = rs.len() as f64;
        let init = rs.iter().map(|r| f64::from(r.initial_nops)).sum::<f64>() / n;
        let fin = rs.iter().map(|r| f64::from(r.final_nops)).sum::<f64>() / n;
        table.row([
            size.to_string(),
            rs.len().to_string(),
            f(init, 2),
            f(fin, 2),
        ]);
    }
    save(
        args,
        "fig4_initial_final_nops",
        &table,
        "Figure 4: Initial and Final NOPs vs Block Size",
    );
}

fn run_fig5(args: &Args, result: &SweepResult) {
    let mut table = TextTable::new(["block size", "blocks"]);
    for (size, rs) in by_size(&result.records) {
        table.row([size.to_string(), rs.len().to_string()]);
    }
    save(
        args,
        "fig5_block_size_distribution",
        &table,
        "Figure 5: Distribution of Sample Block Sizes",
    );
}

fn run_fig6(args: &Args, result: &SweepResult) {
    let mut table = TextTable::new([
        "block size",
        "runs",
        "avg time (us)",
        "median (us)",
        "p95 (us)",
        "max (us)",
    ]);
    for (size, rs) in by_size(&result.records) {
        let times: Vec<u64> = rs.iter().map(|r| r.search_micros).collect();
        let avg = times.iter().sum::<u64>() as f64 / times.len() as f64;
        table.row([
            size.to_string(),
            rs.len().to_string(),
            f(avg, 1),
            percentile(&times, 50.0).to_string(),
            percentile(&times, 95.0).to_string(),
            times.iter().copied().max().unwrap().to_string(),
        ]);
    }
    save(
        args,
        "fig6_runtime_vs_block_size",
        &table,
        "Figure 6: Runtime vs Block Size",
    );
}

fn run_fig7(args: &Args, result: &SweepResult) {
    let mut table = TextTable::new(["block size", "runs", "% optimal (not curtailed)"]);
    for (size, rs) in by_size(&result.records) {
        let optimal = rs.iter().filter(|r| r.completed).count();
        table.row([
            size.to_string(),
            rs.len().to_string(),
            f(100.0 * optimal as f64 / rs.len() as f64, 1),
        ]);
    }
    save(
        args,
        "fig7_percent_optimal",
        &table,
        "Figure 7: Percentage of Runs Finding Provably Optimal Schedules vs Block Size",
    );
}

fn run_encodings(args: &Args) {
    let runs = args.runs.min(300);
    eprintln!("encodings: {runs} blocks x {{wait-count, Tera 1-3 bit, CARP}}...");
    let (machine_name, rows) = encodings::run(runs, args.lambda);
    let table = encodings::render(&machine_name, &rows);
    save(
        args,
        "encodings",
        &table,
        "Delay-mechanism encodings: extra cycles vs precise interlock (optimally scheduled blocks)",
    );
}

fn run_windowed(args: &Args) {
    let blocks = (args.runs / 10).clamp(3, 20);
    eprintln!("windowed: {blocks} large blocks x {{5,10,20,full}}...");
    let rows = windowed::run(blocks, args.lambda);
    let table = windowed::render(&rows);
    save(
        args,
        "windowed",
        &table,
        "Windowed scheduling (section 5.3 future work): quality vs window size on large blocks",
    );
}

fn run_serve(args: &Args) {
    let requests = args.runs.clamp(40, 2_000);
    let shapes = (requests / 10).clamp(4, 32);
    let workers = if args.threads == 0 { 4 } else { args.threads };
    eprintln!("serve: {requests} requests over {shapes} shapes, {workers} workers...");
    let report = serve::run(requests, shapes, workers);
    println!(
        "serve: {} requests in {:.1} ms — {:.0} req/s, {} cache hits, mean hit/miss speedup {:.1}x",
        report.requests,
        report.wall_micros as f64 / 1_000.0,
        report.throughput_rps,
        report.cache_hits,
        report.speedup()
    );
    save(
        args,
        "serve_throughput",
        &report.table(),
        "Serving throughput: cache hits vs live searches on a repeated-shapes workload",
    );
}

fn run_prove(args: &Args) {
    let runs = args.runs.min(300);
    eprintln!("prove: {runs} blocks x {{plain, logged, plain}} + checker replay...");
    let report = prove::run(runs, args.lambda);
    println!(
        "prove: {} certificates accepted, {} rejected, {} truncated — \
         disabled-path delta {:.2}%, logging overhead {:.2}%, checker {:.0} events/s",
        report.proved,
        report.rejected,
        report.truncated,
        report.disabled_overhead_pct(),
        report.logging_overhead_pct(),
        report.checker_events_per_sec()
    );
    if report.rejected > 0 {
        eprintln!("prove: GATE FAILED — the checker rejected a search certificate");
    }
    if report.disabled_overhead_pct() >= 2.0 {
        eprintln!(
            "prove: note — disabled-path delta {:.2}% exceeds the 2% budget (noisy machine?)",
            report.disabled_overhead_pct()
        );
    }
    save(
        args,
        "prove_overhead",
        &prove::render(&report),
        "Optimality certificates: logging overhead and checker throughput",
    );
}

/// Backend-portfolio gate: SAT and B&B must agree on every proven-optimal
/// μ and every SAT outcome must audit clean. Returns `false` when either
/// gate fails; performance numbers only inform.
fn run_solve(args: &Args) -> bool {
    let runs = if args.quick { 40 } else { args.runs.min(300) };
    eprintln!("solve: {runs} blocks x {{branch-and-bound, SAT descent}} + cross-certification...");
    let report = solve::run(runs, args.lambda);
    println!(
        "solve: {} comparable blocks, {} agreements, {} disagreements, {} audit failures — \
         SAT faster on {}, B&B faster on {} ({} closed by bound)",
        report.both_optimal,
        report.agreements,
        report.disagreements,
        report.audit_failures,
        report.sat_faster,
        report.bnb_faster,
        report.proved_by_bound
    );
    let mut ok = true;
    if report.disagreements > 0 {
        eprintln!(
            "solve: GATE FAILED — {} blocks where SAT and B&B disagree on the optimal NOP count",
            report.disagreements
        );
        ok = false;
    }
    if report.audit_failures > 0 {
        eprintln!(
            "solve: GATE FAILED — {} SAT outcomes rejected by the independent audit",
            report.audit_failures
        );
        ok = false;
    }
    save(
        args,
        "solve_portfolio",
        &report.table(),
        "Backend portfolio: SAT descent vs branch-and-bound, cross-certified",
    );
    std::fs::write(
        "BENCH_solve.json",
        format!("{}\n", report.to_json().to_pretty()),
    )
    .expect("write BENCH_solve.json");
    println!("(benchmark summary saved to BENCH_solve.json)");
    ok
}

/// Tracing-overhead gate. Returns `false` when the replay itself failed
/// (errors or a broken search identity) — measurement noise on the
/// overhead delta only warns, like `prove`.
fn run_observe(args: &Args) -> bool {
    let requests = if args.quick {
        60
    } else {
        args.runs.clamp(40, 2_000)
    };
    let shapes = (requests / 10).clamp(4, 32);
    let workers = if args.threads == 0 { 4 } else { args.threads };
    eprintln!(
        "observe: {requests} requests over {shapes} shapes, {workers} workers, \
         5 x {{off, off, on}} replays..."
    );
    let report = observe::run(requests, shapes, workers);
    println!(
        "observe: {} req/s, p90 {} µs — disabled-path delta {:.2}%, tracing-on overhead {:.2}%, \
         flight-on overhead {:.2}%",
        f(report.throughput_rps, 0),
        report.p90_micros,
        report.disabled_overhead_pct(),
        report.traced_overhead_pct(),
        report.flight_overhead_pct()
    );
    let mut ok = true;
    if report.errors > 0 {
        eprintln!("observe: GATE FAILED — {} error responses", report.errors);
        ok = false;
    }
    if !report.identity_ok {
        eprintln!("observe: GATE FAILED — aggregate search identity broken");
        ok = false;
    }
    if report.disabled_overhead_pct() >= 2.0 {
        eprintln!(
            "observe: note — disabled-path delta {:.2}% exceeds the 2% budget (noisy machine?)",
            report.disabled_overhead_pct()
        );
    }
    // The disabled passes now run with tracing AND the flight recorder
    // compiled in but off, so the same < 2% budget covers the recorder's
    // off path (one relaxed load per request).
    save(
        args,
        "observe",
        &report.table(),
        "Tracing: disabled-path delta, tracing-on overhead, fleet-wide metrics",
    );
    std::fs::write(
        "BENCH_sched.json",
        format!("{}\n", report.to_json().to_pretty()),
    )
    .expect("write BENCH_sched.json");
    println!("(benchmark summary saved to BENCH_sched.json)");
    ok
}

/// Parallel-search gate: the pool must agree with the serial kernel on
/// every corpus block, every merged multi-worker certificate must pass
/// the independent checker, and — on hosts with at least 4 cores — the
/// 4-worker speedup on the hard block must reach 2×. The full 1/2/4/8
/// curve lands in `BENCH_parallel.json` either way.
fn run_parallel(args: &Args) -> bool {
    let (runs, curve_size) = if args.quick {
        (24, 28)
    } else {
        (args.runs.min(120), 30)
    };
    eprintln!(
        "parallel: {runs} corpus blocks serial-vs-pool + speedup curve on a {curve_size}-instruction block..."
    );
    let report = parallel::run(runs, args.lambda, curve_size);
    println!(
        "parallel: {} disagreements over {} blocks, {} of {} certificates rejected — \
         speedups x2={:.2} x4={:.2} x8={:.2} on {} core(s)",
        report.disagreements,
        report.corpus_blocks,
        report.certificates_rejected,
        report.certificates_checked,
        report.speedup_at(2),
        report.speedup_at(4),
        report.speedup_at(8),
        report.cores
    );
    let mut ok = true;
    if report.disagreements > 0 {
        eprintln!(
            "parallel: GATE FAILED — {} blocks where the pool disagrees with the serial kernel",
            report.disagreements
        );
        ok = false;
    }
    if report.certificates_rejected > 0 {
        eprintln!(
            "parallel: GATE FAILED — {} merged certificates rejected by the checker",
            report.certificates_rejected
        );
        ok = false;
    }
    if report.scaling_gate_applies() {
        if report.speedup_at(4) < 2.0 {
            eprintln!(
                "parallel: GATE FAILED — {:.2}x at 4 workers is below the 2x floor on a {}-core host",
                report.speedup_at(4),
                report.cores
            );
            ok = false;
        }
    } else {
        eprintln!(
            "parallel: note — {} core(s) reported; the 2x-at-4-workers gate needs 4 and was skipped",
            report.cores
        );
    }
    save(
        args,
        "parallel_speedup",
        &report.table(),
        "Work-stealing parallel search: speedup curve and consistency gates",
    );
    std::fs::write(
        "BENCH_parallel.json",
        format!("{}\n", report.to_json().to_pretty()),
    )
    .expect("write BENCH_parallel.json");
    println!("(benchmark summary saved to BENCH_parallel.json)");
    ok
}

fn run_ablation(args: &Args) {
    let runs = args.runs.min(400);
    eprintln!("ablation: {runs} blocks per configuration...");
    let rows = ablation::run(runs, args.lambda);
    let table = ablation::render(&rows);
    save(
        args,
        "ablation",
        &table,
        "Ablation: pruning devices, bounds, baselines",
    );
}

/// Where the observatory appends its records.
const TRAJECTORY_PATH: &str = "BENCH_trajectory.json";

/// `repro bench`: run the serve/parallel/solve/prove experiments a few
/// times each, condense every metric to median + IQR, and append one
/// schema-versioned record to `BENCH_trajectory.json`. Correctness
/// counters (disagreements, audit failures, rejected certificates) are
/// summed over the samples and gated exactly; timing metrics carry wide
/// per-metric noise tolerances that `repro compare` applies.
fn run_bench(args: &Args) -> bool {
    use trajectory::Metric;

    let samples = if args.quick { 3 } else { 5 };
    eprintln!(
        "bench: observatory run — {{serve, parallel, solve, prove}} x {samples} sample(s){}...",
        if args.quick { " (quick)" } else { "" }
    );
    let existing = match trajectory::load(TRAJECTORY_PATH) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench: {e}");
            return false;
        }
    };
    let mut record = trajectory::Record::new(trajectory::next_seq(&existing), args.quick);
    // An exactly-gated counter: summed over samples, zero tolerance, so
    // a single bad sample regresses regardless of machine noise.
    let exact = |total: f64| Metric {
        median: total,
        iqr: 0.0,
        higher_is_better: false,
        tolerance_pct: 0.0,
    };

    // Serve: memoized serving throughput on the repeated-shapes workload.
    {
        let (requests, shapes, workers) = if args.quick {
            (200, 8, 4)
        } else {
            (1_000, 16, 4)
        };
        let (mut rps, mut speedup, mut hit_rate) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..samples {
            let r = serve::run(requests, shapes, workers);
            rps.push(r.throughput_rps);
            speedup.push(r.speedup());
            hit_rate.push(r.cache_hits as f64 / r.requests.max(1) as f64);
        }
        let mut m = trajectory::Metrics::new();
        m.insert(
            "throughput_rps".into(),
            Metric::from_samples(&rps, true, 50.0),
        );
        m.insert(
            "hit_miss_speedup".into(),
            Metric::from_samples(&speedup, true, 60.0),
        );
        m.insert(
            "cache_hit_rate".into(),
            Metric::from_samples(&hit_rate, true, 20.0),
        );
        eprintln!(
            "bench: serve — median {:.0} req/s over {requests} requests",
            m["throughput_rps"].median
        );
        record.insert("serve", m);
    }

    // Parallel: pool-vs-serial consistency (exact) + scaling timings.
    {
        let (runs, curve_size) = if args.quick { (24, 28) } else { (60, 30) };
        let (mut serial_us, mut x4, mut disagree, mut rejected) =
            (Vec::new(), Vec::new(), 0u64, 0u64);
        let mut gate_applies = false;
        for _ in 0..samples {
            let r = parallel::run(runs, args.lambda, curve_size);
            serial_us.push(r.serial_micros as f64);
            disagree += r.disagreements as u64;
            rejected += r.certificates_rejected as u64;
            if r.scaling_gate_applies() {
                gate_applies = true;
                x4.push(r.speedup_at(4));
            }
        }
        let mut m = trajectory::Metrics::new();
        m.insert(
            "serial_micros".into(),
            Metric::from_samples(&serial_us, false, 60.0),
        );
        if gate_applies {
            m.insert("speedup_x4".into(), Metric::from_samples(&x4, true, 60.0));
        }
        m.insert("disagreements".into(), exact(disagree as f64));
        m.insert("certificates_rejected".into(), exact(rejected as f64));
        eprintln!(
            "bench: parallel — {disagree} disagreement(s), {rejected} rejected certificate(s)"
        );
        record.insert("parallel", m);
    }

    // Solve: backend-portfolio agreement (exact) + per-backend timings.
    {
        let runs = if args.quick { 40 } else { 150 };
        let (mut bnb_us, mut sat_us, mut disagree, mut audit) =
            (Vec::new(), Vec::new(), 0u64, 0u64);
        for _ in 0..samples {
            let r = solve::run(runs, args.lambda);
            bnb_us.push(r.bnb_micros as f64);
            sat_us.push(r.sat_micros as f64);
            disagree += r.disagreements as u64;
            audit += r.audit_failures as u64;
        }
        let mut m = trajectory::Metrics::new();
        m.insert(
            "bnb_micros".into(),
            Metric::from_samples(&bnb_us, false, 60.0),
        );
        m.insert(
            "sat_micros".into(),
            Metric::from_samples(&sat_us, false, 60.0),
        );
        m.insert("disagreements".into(), exact(disagree as f64));
        m.insert("audit_failures".into(), exact(audit as f64));
        eprintln!("bench: solve — {disagree} disagreement(s), {audit} audit failure(s)");
        record.insert("solve", m);
    }

    // Prove: certificate acceptance (exact) + checker throughput.
    {
        let runs = if args.quick { 40 } else { 150 };
        let (mut checker, mut rejected) = (Vec::new(), 0u64);
        for _ in 0..samples {
            let r = prove::run(runs, args.lambda);
            checker.push(r.checker_events_per_sec());
            rejected += r.rejected as u64;
        }
        let mut m = trajectory::Metrics::new();
        m.insert(
            "checker_events_per_sec".into(),
            Metric::from_samples(&checker, true, 60.0),
        );
        m.insert("certificates_rejected".into(), exact(rejected as f64));
        eprintln!("bench: prove — {rejected} rejected certificate(s)");
        record.insert("prove", m);
    }

    let (seq, rev) = (record.seq, record.git_rev.clone());
    if let Some(path) = &args.save_baseline {
        let text = record.to_json().to_pretty() + "\n";
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("bench: write {path}: {e}");
            return false;
        }
        println!("(baseline record saved to {path})");
    }
    if let Err(e) = trajectory::append(TRAJECTORY_PATH, record) {
        eprintln!("bench: {e}");
        return false;
    }
    println!("bench: appended record seq {seq} (rev {rev}) to {TRAJECTORY_PATH}");
    true
}

/// `repro compare`: diff the newest trajectory record against a pinned
/// baseline record, metric by metric, failing on any regression beyond
/// tolerance.
fn run_compare(args: &Args) -> bool {
    let Some(baseline_path) = &args.baseline else {
        eprintln!("compare: --baseline FILE is required");
        return false;
    };
    let base = match trajectory::load(baseline_path) {
        Ok(records) => match records.into_iter().last() {
            Some(r) => r,
            None => {
                eprintln!("compare: {baseline_path} holds no records");
                return false;
            }
        },
        Err(e) => {
            eprintln!("compare: {e}");
            return false;
        }
    };
    let cand = match trajectory::load(TRAJECTORY_PATH) {
        Ok(records) => match records.into_iter().last() {
            Some(r) => r,
            None => {
                eprintln!("compare: {TRAJECTORY_PATH} holds no records — run `repro bench` first");
                return false;
            }
        },
        Err(e) => {
            eprintln!("compare: {e}");
            return false;
        }
    };
    if base.schema_version != cand.schema_version {
        eprintln!(
            "compare: schema mismatch — baseline v{} vs candidate v{}; re-pin the baseline",
            base.schema_version, cand.schema_version
        );
        return false;
    }
    eprintln!(
        "compare: baseline seq {} (rev {}) vs candidate seq {} (rev {}), floor tolerance {}%{}",
        base.seq,
        base.git_rev,
        cand.seq,
        cand.git_rev,
        args.tolerance_pct,
        if base.fingerprint != cand.fingerprint {
            " — fingerprints differ, timing tolerances doubled"
        } else {
            ""
        }
    );

    let cmp = trajectory::compare(&base, &cand, args.tolerance_pct);
    let mut table = TextTable::new([
        "metric", "baseline", "current", "worse-by", "tol", "verdict",
    ]);
    for d in &cmp.diffs {
        table.row([
            d.name.clone(),
            f(d.base, 2),
            d.new.map_or_else(|| "missing".to_string(), |v| f(v, 2)),
            if d.degradation_pct.is_finite() {
                format!("{:+.1}%", d.degradation_pct)
            } else {
                "—".to_string()
            },
            format!("{:.0}%", d.tolerance_pct),
            if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    if cmp.regressions > 0 {
        eprintln!(
            "compare: GATE FAILED — {} metric(s) regressed beyond tolerance",
            cmp.regressions
        );
        false
    } else {
        println!(
            "compare: OK — {} metric(s) within tolerance",
            cmp.diffs.len()
        );
        true
    }
}
