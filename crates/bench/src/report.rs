//! Plain-text table and CSV rendering for experiment output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{cell:>w$}{sep}", w = *w);
            }
        };
        line(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write both `.txt` and `.csv` into `dir` under `name`.
    pub fn save(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.txt")), self.render())?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Percentile (0..=100) of an unsorted sample, by nearest-rank; 0 for an
/// empty sample.
pub fn percentile(samples: &[u64], pct: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = ((pct / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Format a float with the given precision, trimming noise.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a large count in scientific notation like the paper's Table 1
/// (`2.1x10^13`) when it exceeds 7 digits.
pub fn sci(v: f64) -> String {
    if v < 10_000_000.0 {
        format!("{}", v as u64)
    } else {
        let exp = v.log10().floor() as i32;
        let mant = v / 10f64.powi(exp);
        format!("{mant:.1}x10^{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["n", "calls"]);
        t.row(["8", "40320"]);
        t.row(["13", "6"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("calls"));
        assert!(lines[2].ends_with("40320"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1,5", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn percentiles_by_nearest_rank() {
        let xs = [5u64, 1, 9, 3, 7];
        assert_eq!(percentile(&xs, 0.0), 1);
        assert_eq!(percentile(&xs, 50.0), 5);
        assert_eq!(percentile(&xs, 100.0), 9);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 95.0), 42);
    }

    #[test]
    fn sci_notation_matches_paper_style() {
        assert_eq!(sci(40_320.0), "40320");
        assert_eq!(sci(2.09e13), "2.1x10^13");
        assert_eq!(sci(6.2e9), "6.2x10^9");
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join("pipesched-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = TextTable::new(["x"]);
        t.row(["1"]);
        t.save(&dir, "demo").unwrap();
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
