//! Ablation benchmark: search time under each pruning configuration on the
//! same block set (the count-based ablation table is `repro ablation`).

use criterion::{criterion_group, criterion_main, Criterion};

use pipesched_core::{search, BoundKind, EquivalenceMode, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_synth::CorpusSpec;

fn bench_ablation(c: &mut Criterion) {
    let corpus = CorpusSpec::paper_default().with_runs(12);
    let machine = presets::paper_simulation();
    let blocks: Vec<_> = (0..12).map(|k| corpus.block(k)).collect();
    let dags: Vec<_> = blocks.iter().map(DepDag::build).collect();

    let configs: Vec<(&str, SearchConfig)> = vec![
        ("paper-default", SearchConfig::default()),
        (
            "no-equivalence",
            SearchConfig {
                equivalence: EquivalenceMode::Off,
                ..SearchConfig::default()
            },
        ),
        (
            "structural-equivalence",
            SearchConfig {
                equivalence: EquivalenceMode::Structural,
                ..SearchConfig::default()
            },
        ),
        (
            "no-quick-check",
            SearchConfig {
                quick_check: false,
                ..SearchConfig::default()
            },
        ),
        (
            "alpha-beta-bound",
            SearchConfig {
                bound: BoundKind::AlphaBeta,
                ..SearchConfig::default()
            },
        ),
        ("paper-exact", SearchConfig::paper_exact()),
    ];

    let mut group = c.benchmark_group("ablation/12-corpus-blocks");
    group.sample_size(10);
    for (label, cfg) in configs {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut total = 0u64;
                for (block, dag) in blocks.iter().zip(&dags) {
                    let ctx = SchedContext::new(block, dag, &machine);
                    total += u64::from(search(&ctx, &cfg).nops);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
