//! Core scheduler benchmarks: optimal search time per block size
//! (the paper's Figure 6 / "about 100 typical blocks per second"
//! conclusion) and end-to-end throughput on corpus blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pipesched_bench::experiments::blocks::block_of_size;
use pipesched_core::{search, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_synth::CorpusSpec;

fn bench_search_by_size(c: &mut Criterion) {
    let machine = presets::paper_simulation();
    let mut group = c.benchmark_group("search/block-size");
    group.sample_size(20);
    for size in [8usize, 12, 16, 20, 24] {
        let block = block_of_size(size, 7);
        let dag = DepDag::build(&block);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let ctx = SchedContext::new(&block, &dag, &machine);
                search(&ctx, &SearchConfig::default())
            })
        });
    }
    group.finish();
}

fn bench_corpus_throughput(c: &mut Criterion) {
    // The paper: "schedules about 100 typical blocks per second" on a
    // workstation. Measure blocks/second end to end (generation excluded).
    let corpus = CorpusSpec::paper_default().with_runs(32);
    let machine = presets::paper_simulation();
    let blocks: Vec<_> = (0..32).map(|k| corpus.block(k)).collect();
    let dags: Vec<_> = blocks.iter().map(DepDag::build).collect();
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("corpus-32-blocks", |b| {
        b.iter(|| {
            let mut total_nops = 0u64;
            for (block, dag) in blocks.iter().zip(&dags) {
                let ctx = SchedContext::new(block, dag, &machine);
                total_nops += u64::from(search(&ctx, &SearchConfig::default()).nops);
            }
            total_nops
        })
    });
    g.finish();
}

fn bench_machines(c: &mut Criterion) {
    // Search cost across machine models (deeper pipelines ⇒ more NOPs to
    // eliminate ⇒ weaker α-β bound early on).
    let block = block_of_size(16, 3);
    let dag = DepDag::build(&block);
    let mut group = c.benchmark_group("search/machine");
    group.sample_size(20);
    for machine in presets::all_presets() {
        group.bench_function(machine.name.clone(), |b| {
            b.iter(|| {
                let ctx = SchedContext::new(&block, &dag, &machine);
                search(&ctx, &SearchConfig::default())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search_by_size,
    bench_corpus_throughput,
    bench_machines
);
criterion_main!(benches);
