//! Microbenchmarks of the Ω primitive: the incremental NOP-insertion
//! engine (push/pop) against the O(n²) ground-truth evaluation, justifying
//! the incremental design (§2.3 measures Ω cost directly — 0.12 ms on a
//! Gould NP1; we report the modern equivalent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pipesched_bench::experiments::blocks::block_of_size;
use pipesched_core::{list_schedule, SchedContext, TimingEngine};
use pipesched_ir::{BlockAnalysis, DepDag};
use pipesched_machine::presets;
use pipesched_sim::{issue_times, TimingModel};

fn bench_omega(c: &mut Criterion) {
    let machine = presets::paper_simulation();
    let mut group = c.benchmark_group("omega/full-schedule-evaluation");
    group.sample_size(30);
    for size in [8usize, 16, 32] {
        let block = block_of_size(size, 5);
        let dag = DepDag::build(&block);
        let ctx = SchedContext::new(&block, &dag, &machine);
        let analysis = BlockAnalysis::compute(&dag);
        let order = list_schedule(&dag, &analysis);

        group.bench_with_input(
            BenchmarkId::new("incremental-engine", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let mut engine = TimingEngine::new(&ctx);
                    for &t in &order {
                        engine.push_default(t);
                    }
                    engine.total_nops()
                })
            },
        );

        let tm = TimingModel::new(&block, &dag, &machine);
        group.bench_with_input(
            BenchmarkId::new("simulator-ground-truth", size),
            &size,
            |b, _| b.iter(|| issue_times(&tm, &order)),
        );
    }
    group.finish();
}

fn bench_push_pop(c: &mut Criterion) {
    // The search's inner loop: place one instruction, undo it.
    let machine = presets::paper_simulation();
    let block = block_of_size(24, 5);
    let dag = DepDag::build(&block);
    let ctx = SchedContext::new(&block, &dag, &machine);
    let analysis = BlockAnalysis::compute(&dag);
    let order = list_schedule(&dag, &analysis);

    c.bench_function("omega/push-pop-at-depth-12", |b| {
        let mut engine = TimingEngine::new(&ctx);
        for &t in &order[..12] {
            engine.push_default(t);
        }
        let probe = order[12];
        b.iter(|| {
            engine.push_default(probe);
            engine.pop();
        })
    });
}

fn bench_dag_and_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    for size in [16usize, 32] {
        let block = block_of_size(size, 9);
        group.bench_with_input(BenchmarkId::new("dag-build", size), &size, |b, _| {
            b.iter(|| DepDag::build(&block))
        });
        let dag = DepDag::build(&block);
        group.bench_with_input(BenchmarkId::new("closure", size), &size, |b, _| {
            b.iter(|| BlockAnalysis::compute(&dag))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_omega, bench_push_pop, bench_dag_and_analysis);
criterion_main!(benches);
