//! Front-end benchmarks: parse → lower → optimize throughput, and the
//! synthetic generator itself (the experiment harness regenerates 16,000
//! blocks, so generation speed matters for Figure 6's denominator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pipesched_frontend::opt::{optimize, OptConfig};
use pipesched_frontend::{compile, lower, parse_program};
use pipesched_synth::{generate_block, GeneratorConfig};

const SOURCE: &str = "\
t1 = a + b;
t2 = t1 * c;
t3 = a + b;
t4 = t3 * c;
r = t2 - t4;
s = r / 2;
u = s * s + 0;
v = u * 1;
";

fn bench_compile_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.bench_function("parse", |b| b.iter(|| parse_program(SOURCE).unwrap()));
    let program = parse_program(SOURCE).unwrap();
    group.bench_function("lower", |b| b.iter(|| lower("bench", &program)));
    let block = lower("bench", &program);
    group.bench_function("optimize", |b| {
        b.iter(|| optimize(&block, &OptConfig::default()))
    });
    group.bench_function("compile-end-to-end", |b| {
        b.iter(|| compile("bench", SOURCE).unwrap())
    });
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth-generator");
    for statements in [8usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(statements),
            &statements,
            |b, &statements| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    generate_block(&GeneratorConfig::new(statements, 6, 3, seed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile_pipeline, bench_generator);
criterion_main!(benches);
