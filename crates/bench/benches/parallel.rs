//! Parallel branch-and-bound speedup (extension ablation): serial search
//! vs the shared-incumbent parallel search at 1, 2 and all cores, and the
//! embarrassingly parallel corpus sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pipesched_bench::experiments::blocks::block_of_size;
use pipesched_bench::{run_sweep, SweepConfig};
use pipesched_core::parallel::parallel_search;
use pipesched_core::{search, ParallelConfig, SchedContext, SearchConfig};
use pipesched_ir::DepDag;
use pipesched_machine::presets;
use pipesched_synth::CorpusSpec;

fn bench_parallel_search(c: &mut Criterion) {
    let machine = presets::paper_simulation();
    // A hard block: large enough that the serial search does real work.
    let block = block_of_size(22, 17);
    let dag = DepDag::build(&block);

    let mut group = c.benchmark_group("parallel-bnb");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            let ctx = SchedContext::new(&block, &dag, &machine);
            search(&ctx, &SearchConfig::default())
        })
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let ctx = SchedContext::new(&block, &dag, &machine);
                    parallel_search(
                        &ctx,
                        &SearchConfig::with_lambda(50_000),
                        &ParallelConfig::with_threads(threads),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep-scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = SweepConfig {
                    corpus: CorpusSpec::paper_default().with_runs(48),
                    lambda: 20_000,
                    threads,
                    validate: false,
                    ..SweepConfig::default()
                };
                b.iter(|| run_sweep(&config))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_search, bench_sweep_scaling);
criterion_main!(benches);
