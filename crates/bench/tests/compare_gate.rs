//! End-to-end gate test for the perf observatory: `repro compare` must
//! exit nonzero when the newest trajectory record degrades a metric
//! beyond tolerance, and zero when everything is within budget.

use std::collections::BTreeMap;
use std::process::Command;

use pipesched_bench::trajectory::{self, Metric, Record};

fn metric(median: f64, higher_is_better: bool, tolerance_pct: f64) -> Metric {
    Metric {
        median,
        iqr: 0.0,
        higher_is_better,
        tolerance_pct,
    }
}

/// A record with a serve throughput metric and an exactly-gated solve
/// disagreement counter.
fn record(seq: u64, rps: f64, disagreements: f64) -> Record {
    let mut r = Record::new(seq, true);
    let mut serve = BTreeMap::new();
    serve.insert("throughput_rps".to_string(), metric(rps, true, 25.0));
    r.insert("serve", serve);
    let mut solve = BTreeMap::new();
    solve.insert(
        "disagreements".to_string(),
        metric(disagreements, false, 0.0),
    );
    r.insert("solve", solve);
    r
}

fn run_compare(dir: &std::path::Path, baseline: &str) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["compare", "--baseline", baseline, "--tolerance", "25%"])
        .current_dir(dir)
        .output()
        .expect("repro compare must launch")
        .status
}

#[test]
fn compare_gate_fails_on_an_injected_regression_and_passes_clean() {
    let dir = std::env::temp_dir().join(format!("pipesched_compare_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("baseline.json");
    std::fs::write(
        &baseline_path,
        record(1, 100_000.0, 0.0).to_json().to_pretty() + "\n",
    )
    .unwrap();
    let trajectory_path = dir.join("BENCH_trajectory.json");

    // Candidate 1: a fake regressed record — throughput halved, well past
    // the 25% tolerance. The gate must fail (nonzero exit).
    std::fs::write(
        &trajectory_path,
        trajectory::render(&[record(2, 50_000.0, 0.0)]),
    )
    .unwrap();
    let status = run_compare(&dir, baseline_path.to_str().unwrap());
    assert!(
        !status.success(),
        "compare must exit nonzero on a degraded metric"
    );

    // Candidate 2: throughput fine, but one backend disagreement — the
    // zero-tolerance correctness gate must fail too.
    std::fs::write(
        &trajectory_path,
        trajectory::render(&[record(3, 100_000.0, 1.0)]),
    )
    .unwrap();
    let status = run_compare(&dir, baseline_path.to_str().unwrap());
    assert!(
        !status.success(),
        "compare must exit nonzero on a correctness counter"
    );

    // Candidate 3: within tolerance → clean exit.
    std::fs::write(
        &trajectory_path,
        trajectory::render(&[record(4, 90_000.0, 0.0)]),
    )
    .unwrap();
    let status = run_compare(&dir, baseline_path.to_str().unwrap());
    assert!(status.success(), "compare must pass a within-budget record");

    std::fs::remove_dir_all(&dir).ok();
}
