//! Property test: every optimizer configuration preserves the reference
//! interpreter's semantics on random programs — the final memory state of
//! the optimized block equals the unoptimized one for random inputs.

use std::collections::HashMap;

use proptest::prelude::*;

use pipesched_frontend::ast::{Assign, BinOp, Expr, Program};
use pipesched_frontend::opt::{optimize, OptConfig};
use pipesched_frontend::{interpret, lower};

const VARS: [&str; 5] = ["a", "b", "c", "d", "e"];

fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Literal),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].to_string())),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                inner.clone(),
                inner,
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ]
            )
                .prop_map(|(lhs, rhs, op)| Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(
        ((0usize..VARS.len()), arb_expr(3)).prop_map(|(t, value)| Assign {
            line: 0,
            target: VARS[t].to_string(),
            value,
        }),
        1..10,
    )
    .prop_map(|statements| Program { statements })
}

fn configs() -> Vec<OptConfig> {
    let full = OptConfig::default();
    vec![
        full,
        OptConfig { cse: false, ..full },
        OptConfig {
            constant_fold: false,
            ..full
        },
        OptConfig {
            peephole: false,
            ..full
        },
        OptConfig { dce: false, ..full },
        OptConfig {
            constant_fold: true,
            cse: false,
            peephole: false,
            dce: false,
            max_iterations: 3,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimizer_preserves_final_memory(
        program in arb_program(),
        inputs in proptest::collection::vec(-100i64..100, VARS.len()),
    ) {
        let initial: HashMap<String, i64> = VARS
            .iter()
            .zip(&inputs)
            .map(|(k, &v)| (k.to_string(), v))
            .collect();
        let block = lower("prop", &program);
        let reference = interpret(&block, &initial);

        for cfg in configs() {
            let (optimized, stats) = optimize(&block, &cfg);
            optimized.verify().unwrap();
            prop_assert!(stats.tuples_after <= stats.tuples_before);
            let got = interpret(&optimized, &initial);
            // Compare on the union of variables; missing keys mean the
            // variable was never touched and retains its initial value.
            for (var, &v) in &reference.memory {
                let opt_v = got
                    .memory
                    .get(var)
                    .copied()
                    .unwrap_or_else(|| initial.get(var).copied().unwrap_or(0));
                prop_assert_eq!(
                    opt_v, v,
                    "cfg {:?} broke `{}`:\nbefore:\n{}\nafter:\n{}",
                    cfg, var, block, optimized
                );
            }
        }
    }

    /// Optimization never grows the block, and the full pipeline is at
    /// least as effective as any single pass.
    #[test]
    fn optimizer_monotone_in_size(program in arb_program()) {
        let block = lower("prop", &program);
        let (full, _) = optimize(&block, &OptConfig::default());
        prop_assert!(full.len() <= block.len());
    }
}
