//! Tokens of the assignment-statement language.

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (variable name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:` (labels)
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
