//! Hand-written lexer for the assignment language.

use crate::error::FrontendError;
use crate::token::{Token, TokenKind};

/// Tokenize `source`. Comments run from `//` or `;`-free `#`? No — the
/// language keeps it minimal: `//` to end of line is a comment.
pub fn tokenize(source: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = source.chars().peekable();

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    // Comment to end of line.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                            break;
                        }
                    }
                } else {
                    out.push(Token {
                        kind: TokenKind::Slash,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(ident),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let value = text
                    .parse::<i64>()
                    .map_err(|_| FrontendError::IntOutOfRange {
                        text: text.clone(),
                        line: tline,
                    })?;
                out.push(Token {
                    kind: TokenKind::Int(value),
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let kind = match c {
                    '=' => TokenKind::Assign,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    other => {
                        return Err(FrontendError::UnexpectedChar {
                            ch: other,
                            line,
                            col,
                        })
                    }
                };
                chars.next();
                col += 1;
                out.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_statement() {
        assert_eq!(
            kinds("a = b * 15;"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Star,
                TokenKind::Int(15),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a = 1; // set a\nb = 2;").len(),
            9, // a = 1 ; b = 2 ; eof
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = tokenize("a = 1;\n b = 2;").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!((b.line, b.col), (2, 2));
    }

    #[test]
    fn rejects_bad_chars_and_big_ints() {
        assert!(matches!(
            tokenize("a = $;"),
            Err(FrontendError::UnexpectedChar { ch: '$', .. })
        ));
        assert!(matches!(
            tokenize("a = 99999999999999999999;"),
            Err(FrontendError::IntOutOfRange { .. })
        ));
    }

    #[test]
    fn division_and_parens() {
        assert_eq!(
            kinds("x = (a / b);"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }
}
