#![warn(missing_docs)]

//! Compiler front end for `pipesched`: a small assignment-statement
//! language, lowering to tuple IR, and the traditional optimizations the
//! paper's prototype performs before scheduling (§3.1): constant folding
//! with value propagation, common subexpression elimination, dead-code
//! elimination, and peephole optimizations.
//!
//! The language covers exactly the programs the paper's synthetic
//! benchmarks consist of — straight-line basic blocks of assignments:
//!
//! ```text
//! b = 15;
//! a = b * a;
//! c = (a + b) - -d;
//! ```
//!
//! Lowering follows the paper's conventions: the *first* reference to a
//! variable generates a `Load`, every assignment generates a `Store`, and
//! within the block values flow through tuple references (Figure 3).

pub mod ast;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parser;
pub mod token;

pub use error::FrontendError;
pub use interp::{interpret, Interpretation};
pub use lower::{lower, lower_with_lines};
pub use opt::witness::{OptTranscript, PassKind, PassWitness, PeepholeRule, RewriteWitness};
pub use opt::{optimize, optimize_with_transcript, OptConfig, OptStats};
pub use parser::{parse_labeled_program, parse_program};

use pipesched_ir::BasicBlock;

/// Compile source text into an optimized basic block
/// (parse → lower → optimize with defaults).
pub fn compile(name: &str, source: &str) -> Result<BasicBlock, FrontendError> {
    let program = {
        let _s = pipesched_trace::span("frontend.parse");
        parse_program(source)?
    };
    let block = {
        let _s = pipesched_trace::span("frontend.lower");
        lower(name, &program)
    };
    let (optimized, _) = optimize(&block, &OptConfig::default());
    Ok(optimized)
}

/// Compile without running the optimizer (for comparing optimization
/// effects, as §3.1 discusses).
pub fn compile_unoptimized(name: &str, source: &str) -> Result<BasicBlock, FrontendError> {
    let program = {
        let _s = pipesched_trace::span("frontend.parse");
        parse_program(source)?
    };
    let _s = pipesched_trace::span("frontend.lower");
    Ok(lower(name, &program))
}

/// Compile a labeled program into a straight-line *sequence* of basic
/// blocks, one per `label:` region (plus an implicit `entry` region for
/// statements before the first label). Each block is lowered and optimized
/// independently; values flow between blocks through memory, which is what
/// makes per-block scheduling with carried pipeline state sound.
pub fn compile_sequence(source: &str) -> Result<Vec<BasicBlock>, FrontendError> {
    let regions = parse_labeled_program(source)?;
    Ok(regions
        .into_iter()
        .map(|(name, program)| {
            let block = lower(&name, &program);
            let (optimized, _) = optimize(&block, &OptConfig::default());
            optimized
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_program_compiles_to_five_tuples() {
        // `b = 15; a = b * a;` — the paper's Figure 3.
        let block = compile_unoptimized("fig3", "b = 15;\na = b * a;\n").unwrap();
        let text = block.to_string();
        assert_eq!(block.len(), 5, "{text}");
        assert!(text.contains("Const 15"));
        assert!(text.contains("Store #b"));
        assert!(text.contains("Load #a"));
        assert!(text.contains("Mul"));
    }

    #[test]
    fn optimizer_shrinks_redundancy() {
        let src = "x = a + b;\ny = a + b;\nz = x + y;\n";
        let unopt = compile_unoptimized("u", src).unwrap();
        let opt = compile("o", src).unwrap();
        assert!(opt.len() < unopt.len(), "{} vs {}", opt.len(), unopt.len());
    }

    #[test]
    fn parse_errors_surface() {
        assert!(compile("bad", "x = ;").is_err());
        assert!(compile("bad", "x + 3;").is_err());
    }
}
