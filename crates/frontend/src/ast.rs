//! Abstract syntax of the assignment language.

/// A straight-line program: one basic block of assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The statements in source order.
    pub statements: Vec<Assign>,
}

/// `target = expr ;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// The assigned variable.
    pub target: String,
    /// The right-hand side.
    pub value: Expr,
    /// 1-based source line of the statement (0 when synthesized).
    pub line: usize,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Literal(i64),
    /// A variable reference.
    Var(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl Expr {
    /// Count the nodes of the expression tree (for generator statistics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Literal(_) | Expr::Var(_) => 1,
            Expr::Neg(e) => 1 + e.size(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Var("a".into())),
            rhs: Box::new(Expr::Neg(Box::new(Expr::Literal(3)))),
        };
        assert_eq!(e.size(), 4);
    }
}
