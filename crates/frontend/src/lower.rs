//! Lowering from AST to tuple IR (the paper's Figure 3 conventions).
//!
//! * The first *use* of a variable emits a `Load`; subsequent uses within
//!   the block reuse the tuple currently holding its value.
//! * Every assignment emits a `Store` and records the stored tuple as the
//!   variable's current value.
//!
//! No optimization happens here — redundancy is left for the optimizer so
//! its effect can be measured (§3.1).

use std::collections::HashMap;

use pipesched_ir::{BasicBlock, Op, Operand, TupleId};

use crate::ast::{BinOp, Expr, Program};

/// Lower `program` into a (verified) basic block named `name`.
pub fn lower(name: &str, program: &Program) -> BasicBlock {
    lower_with_lines(name, program).0
}

/// [`lower`], additionally returning the 1-based source line each tuple
/// was generated from (parallel to the block's tuples; 0 for tuples of
/// synthesized statements). Diagnostics use this to anchor findings to
/// `file:line` instead of tuple ids.
pub fn lower_with_lines(name: &str, program: &Program) -> (BasicBlock, Vec<usize>) {
    let mut block = BasicBlock::new(name);
    // Variable → tuple currently holding its value.
    let mut env: HashMap<String, TupleId> = HashMap::new();
    let mut lines = Vec::new();

    for stmt in &program.statements {
        let before = block.len();
        let value = lower_expr(&mut block, &mut env, &stmt.value);
        let var = block.intern(&stmt.target);
        block.push(Op::Store, Operand::Var(var), Operand::Tuple(value));
        env.insert(stmt.target.clone(), value);
        lines.extend(std::iter::repeat_n(stmt.line, block.len() - before));
    }

    debug_assert!(block.verify().is_ok(), "lowering must produce valid IR");
    debug_assert_eq!(lines.len(), block.len());
    (block, lines)
}

fn lower_expr(block: &mut BasicBlock, env: &mut HashMap<String, TupleId>, expr: &Expr) -> TupleId {
    match expr {
        Expr::Literal(v) => block.push(Op::Const, Operand::Imm(*v), Operand::None),
        Expr::Var(name) => {
            if let Some(&t) = env.get(name) {
                return t;
            }
            let var = block.intern(name);
            let t = block.push(Op::Load, Operand::Var(var), Operand::None);
            env.insert(name.clone(), t);
            t
        }
        Expr::Neg(inner) => {
            let v = lower_expr(block, env, inner);
            block.push(Op::Neg, Operand::Tuple(v), Operand::None)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = lower_expr(block, env, lhs);
            let r = lower_expr(block, env, rhs);
            let o = match op {
                BinOp::Add => Op::Add,
                BinOp::Sub => Op::Sub,
                BinOp::Mul => Op::Mul,
                BinOp::Div => Op::Div,
            };
            block.push(o, Operand::Tuple(l), Operand::Tuple(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use pipesched_ir::TupleId;

    fn lower_src(src: &str) -> BasicBlock {
        lower("t", &parse_program(src).unwrap())
    }

    #[test]
    fn figure3_exactly() {
        let block = lower_src("b = 15;\na = b * a;\n");
        let expect = "\
1: Const 15
2: Store #b, @1
3: Load #a
4: Mul @1, @3
5: Store #a, @4
";
        assert_eq!(block.to_string(), expect);
    }

    #[test]
    fn first_use_loads_subsequent_uses_reuse() {
        let block = lower_src("x = a + a;\ny = a;\n");
        // Only one Load of `a`.
        let loads = block.tuples().iter().filter(|t| t.op == Op::Load).count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn assignment_updates_env() {
        let block = lower_src("a = 1;\nb = a;\n");
        // `b = a` must use the Const, not reload `a`.
        let loads = block.tuples().iter().filter(|t| t.op == Op::Load).count();
        assert_eq!(loads, 0);
        // Store #b references tuple 1 (the Const).
        let store_b = block
            .tuples()
            .iter()
            .filter(|t| t.op == Op::Store)
            .nth(1)
            .unwrap();
        assert_eq!(store_b.b, Operand::Tuple(TupleId(0)));
    }

    #[test]
    fn nested_expression_lowers_inside_out() {
        let block = lower_src("r = (a + b) * -c;");
        let ops: Vec<Op> = block.tuples().iter().map(|t| t.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Load,
                Op::Load,
                Op::Add,
                Op::Load,
                Op::Neg,
                Op::Mul,
                Op::Store
            ]
        );
    }

    #[test]
    fn self_reference_uses_old_value() {
        let block = lower_src("a = a + 1;");
        let ops: Vec<Op> = block.tuples().iter().map(|t| t.op).collect();
        assert_eq!(ops, vec![Op::Load, Op::Const, Op::Add, Op::Store]);
    }
}
