//! Rewrite witnesses: the optimizer's machine-checkable work log.
//!
//! Every pass records *what* it rewrote and *why* as a list of
//! [`RewriteWitness`] events over the tuple ids of the block the pass ran
//! on (the *pre*-pass block). An independent validator in
//! `pipesched-analyze` replays the witnesses against its own dataflow
//! facts and rejects any rewrite it cannot justify — the same
//! transcript-replay discipline `pipesched-proof` applies to the B&B
//! search. Witnesses carry only claims that can be re-derived: the
//! validator never trusts the pass that produced them.

use std::fmt;

use pipesched_ir::TupleId;

/// Which optimizer pass produced a witness list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Constant folding + store-to-load forwarding.
    ConstantFold,
    /// Common subexpression elimination.
    Cse,
    /// Algebraic peephole rewrites.
    Peephole,
    /// Dead-code and dead-store elimination.
    Dce,
}

impl PassKind {
    /// Lower-case pass name, as used in trace spans and stats.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::ConstantFold => "constant_fold",
            PassKind::Cse => "cse",
            PassKind::Peephole => "peephole",
            PassKind::Dce => "dce",
        }
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The algebraic identity a peephole rewrite claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeepholeRule {
    /// `x + 0` or `0 + x` → `x`.
    AddZero,
    /// `x - 0` → `x`.
    SubZero,
    /// `x * 1` or `1 * x` → `x`.
    MulOne,
    /// `x / 1` → `x`.
    DivOne,
    /// `Neg(Neg(x))` → `x`.
    NegNeg,
    /// `Mov x` → `x` (copy propagation).
    MovCopy,
    /// `x * 0` or `0 * x` → `Const 0`.
    MulZero,
}

impl PeepholeRule {
    /// Short rule name for messages.
    pub fn name(self) -> &'static str {
        match self {
            PeepholeRule::AddZero => "x+0",
            PeepholeRule::SubZero => "x-0",
            PeepholeRule::MulOne => "x*1",
            PeepholeRule::DivOne => "x/1",
            PeepholeRule::NegNeg => "neg(neg(x))",
            PeepholeRule::MovCopy => "mov(x)",
            PeepholeRule::MulZero => "x*0",
        }
    }
}

/// One rewrite a pass performed, in terms of *pre*-pass tuple ids.
///
/// Each variant states exactly the obligation the validator must
/// discharge; the only numeric claim (`Fold::value`, `Annul::value`) is
/// re-derived independently from dataflow constants, never trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteWitness {
    /// Tuple `tuple` was replaced in place by `Const value`.
    Fold {
        /// The folded tuple.
        tuple: TupleId,
        /// The claimed constant value.
        value: i64,
    },
    /// `Load` tuple `load` was replaced by `Mov src` because `store` is
    /// the unique in-block reaching store of the loaded variable and it
    /// stored the value of tuple `src`.
    Forward {
        /// The rewritten load.
        load: TupleId,
        /// The justifying (unique reaching) store.
        store: TupleId,
        /// The tuple whose value the store wrote.
        src: TupleId,
    },
    /// Tuple `dup` was removed and its uses redirected to `into`, because
    /// both compute the same value (same value number).
    Merge {
        /// The removed duplicate.
        dup: TupleId,
        /// The surviving tuple uses are redirected to.
        into: TupleId,
    },
    /// Tuple `tuple` was removed because it is dead: no live store
    /// transitively reads its value.
    Delete {
        /// The removed tuple.
        tuple: TupleId,
    },
    /// Tuple `tuple` was removed and its uses redirected to `target`
    /// under an algebraic identity (`rule`).
    Identity {
        /// The removed tuple.
        tuple: TupleId,
        /// The tuple the identity reduces to.
        target: TupleId,
        /// The claimed identity.
        rule: PeepholeRule,
    },
    /// Tuple `tuple` was replaced in place by `Const value` under an
    /// annihilating identity (`x * 0`).
    Annul {
        /// The rewritten tuple.
        tuple: TupleId,
        /// The claimed constant value (always 0 today).
        value: i64,
    },
}

impl fmt::Display for RewriteWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RewriteWitness::Fold { tuple, value } => write!(f, "fold @{tuple} -> {value}"),
            RewriteWitness::Forward { load, store, src } => {
                write!(f, "forward @{load} <- store @{store} (src @{src})")
            }
            RewriteWitness::Merge { dup, into } => write!(f, "merge @{dup} -> @{into}"),
            RewriteWitness::Delete { tuple } => write!(f, "delete @{tuple}"),
            RewriteWitness::Identity {
                tuple,
                target,
                rule,
            } => write!(f, "identity @{tuple} -> @{target} [{}]", rule.name()),
            RewriteWitness::Annul { tuple, value } => {
                write!(f, "annul @{tuple} -> {value} [x*0]")
            }
        }
    }
}

/// One pass execution: which pass ran and what it rewrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassWitness {
    /// The pass that ran.
    pub pass: PassKind,
    /// Its rewrites, in program order of the rewritten tuples.
    pub rewrites: Vec<RewriteWitness>,
}

/// The full work log of one `optimize` invocation: every pass execution
/// that changed the block, in the order the pass manager ran them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptTranscript {
    /// Pass executions in order. Passes that changed nothing are omitted.
    pub passes: Vec<PassWitness>,
}

impl OptTranscript {
    /// Total number of individual rewrites across all passes.
    pub fn rewrite_count(&self) -> usize {
        self.passes.iter().map(|p| p.rewrites.len()).sum()
    }
}

impl fmt::Display for OptTranscript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pw in &self.passes {
            write!(f, "{}:", pw.pass)?;
            for w in &pw.rewrites {
                write!(f, " {w};")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_counts_and_renders() {
        let t = OptTranscript {
            passes: vec![
                PassWitness {
                    pass: PassKind::ConstantFold,
                    rewrites: vec![
                        RewriteWitness::Fold {
                            tuple: TupleId(2),
                            value: 5,
                        },
                        RewriteWitness::Forward {
                            load: TupleId(4),
                            store: TupleId(3),
                            src: TupleId(2),
                        },
                    ],
                },
                PassWitness {
                    pass: PassKind::Dce,
                    rewrites: vec![RewriteWitness::Delete { tuple: TupleId(0) }],
                },
            ],
        };
        assert_eq!(t.rewrite_count(), 3);
        let text = t.to_string();
        assert!(text.contains("constant_fold: fold @3 -> 5;"), "{text}");
        assert!(text.contains("dce: delete @1;"), "{text}");
    }
}
