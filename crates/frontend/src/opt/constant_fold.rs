//! Constant folding with value propagation.
//!
//! * A pure tuple whose operands are all known constants becomes a `Const`
//!   (using checked arithmetic: folds that would overflow or divide by zero
//!   are left for runtime, which is sound because no transformation means
//!   no semantic change).
//! * A `Load` of a variable whose most recent in-block `Store` stored tuple
//!   `t` becomes `Mov t` (store-to-load forwarding — the "value
//!   propagation" of §3.1); peephole then erases the `Mov`.

use pipesched_ir::{BasicBlock, Op, Operand, Tuple};

use super::witness::RewriteWitness;

/// Run one folding pass. `None` if nothing changed; otherwise the new
/// block plus one witness per rewritten tuple.
pub fn run(block: &BasicBlock) -> Option<(BasicBlock, Vec<RewriteWitness>)> {
    let n = block.len();
    let mut known: Vec<Option<i64>> = vec![None; n];
    let mut last_store: Vec<Option<pipesched_ir::TupleId>> = vec![None; block.symbols().len()];
    let mut store_id: Vec<Option<pipesched_ir::TupleId>> = vec![None; block.symbols().len()];
    let mut tuples: Vec<Tuple> = block.tuples().to_vec();
    let mut witnesses = Vec::new();

    for i in 0..n {
        let t = tuples[i];
        let const_of = |o: Operand, known: &[Option<i64>]| -> Option<i64> {
            match o {
                Operand::Imm(v) => Some(v),
                Operand::Tuple(r) => known[r.index()],
                _ => None,
            }
        };
        match t.op {
            Op::Const => known[i] = t.a.as_imm(),
            Op::Load => {
                let v = t.a.as_var().expect("verified").0 as usize;
                if let Some(src) = last_store[v] {
                    // Store-to-load forwarding.
                    tuples[i] = Tuple {
                        id: t.id,
                        op: Op::Mov,
                        a: Operand::Tuple(src),
                        b: Operand::None,
                    };
                    known[i] = known[src.index()];
                    witnesses.push(RewriteWitness::Forward {
                        load: t.id,
                        store: store_id[v].expect("forwarding implies a prior store"),
                        src,
                    });
                }
            }
            Op::Store => {
                let v = t.a.as_var().expect("verified").0 as usize;
                last_store[v] = t.b.as_tuple();
                store_id[v] = Some(t.id);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div => {
                if let (Some(a), Some(b)) = (const_of(t.a, &known), const_of(t.b, &known)) {
                    // Only fold when checked arithmetic succeeds *and*
                    // matches the interpreter's total semantics (it always
                    // does when checked succeeds).
                    if let Some(folded) = t.op.fold(a, b) {
                        tuples[i] = Tuple {
                            id: t.id,
                            op: Op::Const,
                            a: Operand::Imm(folded),
                            b: Operand::None,
                        };
                        known[i] = Some(folded);
                        witnesses.push(RewriteWitness::Fold {
                            tuple: t.id,
                            value: folded,
                        });
                    }
                }
            }
            Op::Neg | Op::Mov => {
                if let Some(a) = const_of(t.a, &known) {
                    if let Some(folded) = t.op.fold_unary(a) {
                        tuples[i] = Tuple {
                            id: t.id,
                            op: Op::Const,
                            a: Operand::Imm(folded),
                            b: Operand::None,
                        };
                        known[i] = Some(folded);
                        witnesses.push(RewriteWitness::Fold {
                            tuple: t.id,
                            value: folded,
                        });
                    }
                }
            }
            Op::Nop => {}
        }
    }

    if witnesses.is_empty() {
        return None;
    }
    let mut out = block.clone();
    out.replace_tuples(tuples);
    debug_assert!(out.verify().is_ok());
    Some((out, witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_program;

    fn fold_src(src: &str) -> Option<BasicBlock> {
        run(&lower("t", &parse_program(src).unwrap())).map(|(b, _)| b)
    }

    #[test]
    fn folds_constant_arithmetic() {
        let out = fold_src("x = 2 + 3;").unwrap();
        assert_eq!(out.tuple(pipesched_ir::TupleId(2)).op, Op::Const);
        assert_eq!(out.tuple(pipesched_ir::TupleId(2)).a, Operand::Imm(5));
    }

    #[test]
    fn forwards_store_to_load() {
        // Lowering reuses values within the env, so force a reload via a
        // hand-built block: Store x, then Load x.
        use pipesched_ir::BlockBuilder;
        let mut b = BlockBuilder::new("fwd");
        let c = b.constant(7);
        b.store("x", c);
        let l = b.load("x");
        b.store("y", l);
        let block = b.finish().unwrap();
        let (out, wits) = run(&block).unwrap();
        assert_eq!(out.tuple(pipesched_ir::TupleId(2)).op, Op::Mov);
        assert_eq!(
            wits,
            vec![RewriteWitness::Forward {
                load: pipesched_ir::TupleId(2),
                store: pipesched_ir::TupleId(1),
                src: pipesched_ir::TupleId(0),
            }]
        );
    }

    #[test]
    fn leaves_overflow_for_runtime() {
        use pipesched_ir::BlockBuilder;
        let mut b = BlockBuilder::new("ovf");
        let big = b.constant(i64::MAX);
        let one = b.constant(1);
        let s = b.add(big, one);
        b.store("x", s);
        let block = b.finish().unwrap();
        // Add doesn't fold (overflow), and nothing else changes.
        assert!(run(&block).is_none());
    }

    #[test]
    fn division_by_zero_not_folded() {
        let out = fold_src("x = 1 / 0;");
        assert!(out.is_none());
    }

    #[test]
    fn propagates_through_chains() {
        let out = fold_src("x = 2 * 3;\ny = x + 1;\n").unwrap();
        // After one pass, both the Mul and (via known-value propagation)
        // the Add are Consts.
        // Tuples: Const 2, Const 3, Const 6 (folded Mul), Store x,
        // Const 1, Const 7 (folded Add), Store y.
        let consts = out.tuples().iter().filter(|t| t.op == Op::Const).count();
        assert_eq!(consts, 5, "\n{out}");
    }

    #[test]
    fn no_change_returns_none() {
        assert!(fold_src("x = a + b;").is_none());
    }
}
