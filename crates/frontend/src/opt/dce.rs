//! Dead-code and dead-store elimination.
//!
//! One backward *coupled liveness* scan tracks variable liveness and tuple
//! (value) liveness together:
//!
//! * at block end every variable is live-out (its final value is
//!   observable memory), so the last store to each variable is live;
//! * a `Store` is live iff its variable is live after it, and kills the
//!   variable's liveness for earlier tuples;
//! * a `Load` revives its variable's liveness **only if the load itself is
//!   live** — a load whose value nobody live consumes keeps nothing alive;
//! * a pure tuple is live iff some live tuple reads its value.
//!
//! Coupling the two directions closes the classic blind spot of running
//! dead-store and dead-value analysis separately: a store whose only
//! readers are dead loads is itself dead, and the whole chain falls in a
//! single pass instead of ratcheting down one fixpoint iteration at a
//! time (or surviving entirely when the chain is cyclic through memory).

use pipesched_ir::rewrite::Rewriter;
use pipesched_ir::{BasicBlock, Op, TupleId};

use super::witness::RewriteWitness;

/// Run one DCE pass. `None` if nothing changed; otherwise the new block
/// plus one `Delete` witness per removed tuple.
pub fn run(block: &BasicBlock) -> Option<(BasicBlock, Vec<RewriteWitness>)> {
    let n = block.len();
    let nvars = block.symbols().len();

    let mut var_live = vec![true; nvars];
    let mut value_live = vec![false; n];
    let mut keep = vec![false; n];
    for (i, t) in block.tuples().iter().enumerate().rev() {
        match t.op {
            Op::Store => {
                let v = t.a.as_var().expect("verified").0 as usize;
                if var_live[v] {
                    keep[i] = true;
                    if let Some(src) = t.b.as_tuple() {
                        value_live[src.index()] = true;
                    }
                }
                var_live[v] = false;
            }
            Op::Load => {
                if value_live[i] {
                    keep[i] = true;
                    let v = t.a.as_var().expect("verified").0 as usize;
                    var_live[v] = true;
                }
            }
            _ => {
                if value_live[i] {
                    keep[i] = true;
                    for r in t.tuple_refs() {
                        value_live[r.index()] = true;
                    }
                }
            }
        }
    }

    let mut rewriter = Rewriter::new(n);
    let mut witnesses = Vec::new();
    for (i, &kept) in keep.iter().enumerate() {
        if !kept {
            rewriter.remove(TupleId(i as u32));
            witnesses.push(RewriteWitness::Delete {
                tuple: TupleId(i as u32),
            });
        }
    }
    if witnesses.is_empty() {
        return None;
    }
    let out = rewriter.apply(block);
    debug_assert!(out.verify().is_ok());
    Some((out, witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    fn run1(block: &BasicBlock) -> Option<BasicBlock> {
        run(block).map(|(b, _)| b)
    }

    #[test]
    fn removes_unused_computation() {
        let mut b = BlockBuilder::new("dead");
        let x = b.load("x");
        let y = b.load("y");
        let _unused = b.mul(x, y);
        b.store("r", x);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        // Mul and the load of y both die.
        assert_eq!(out.len(), 2, "\n{out}");
    }

    #[test]
    fn keeps_everything_reachable() {
        let mut b = BlockBuilder::new("live");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        assert!(run(&block).is_none());
    }

    #[test]
    fn dead_store_removed() {
        let mut b = BlockBuilder::new("ds");
        let c1 = b.constant(1);
        b.store("x", c1);
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        // First store (and its const) die.
        assert_eq!(out.len(), 2, "\n{out}");
        assert_eq!(out.tuple(TupleId(0)).a.as_imm(), Some(2));
    }

    #[test]
    fn store_with_intervening_load_is_live() {
        let mut b = BlockBuilder::new("sl");
        let c1 = b.constant(1);
        b.store("x", c1);
        let l = b.load("x");
        b.store("y", l);
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        // The first store of x is read by a *live* load (it feeds the
        // final store of y) before the overwrite.
        assert!(run(&block).is_none());
    }

    #[test]
    fn store_kept_only_by_dead_load_dies_in_one_pass() {
        // store x, (dead) load x, store x: the load's value is never
        // consumed, so it must not keep the first store alive. The old
        // two-phase DCE kept all of this; coupled liveness removes the
        // first store, its const, and the dead load together.
        let mut b = BlockBuilder::new("blind");
        let c1 = b.constant(1);
        b.store("x", c1);
        let _l = b.load("x");
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        let (out, wits) = run(&block).unwrap();
        assert_eq!(out.len(), 2, "\n{out}");
        assert_eq!(out.tuple(TupleId(0)).a.as_imm(), Some(2));
        assert_eq!(wits.len(), 3);
        assert!(wits
            .iter()
            .all(|w| matches!(w, RewriteWitness::Delete { .. })));
    }

    #[test]
    fn dead_load_chain_through_memory_dies_together() {
        // store x <- c; load x -> neg -> store y; store y <- c2; store x <- c3
        // The store of y via the neg is overwritten, so the neg, the load
        // and the first store of x are all dead — a chain that needs the
        // coupled scan to fall in one pass.
        let mut b = BlockBuilder::new("chainmem");
        let c = b.constant(1);
        b.store("x", c);
        let l = b.load("x");
        let ng = b.neg(l);
        b.store("y", ng);
        let c2 = b.constant(2);
        b.store("y", c2);
        let c3 = b.constant(3);
        b.store("x", c3);
        let block = b.finish().unwrap();
        let (out, _) = run(&block).unwrap();
        // Only c2/store y and c3/store x survive.
        assert_eq!(out.len(), 4, "\n{out}");
    }

    #[test]
    fn transitively_dead_chain_dies_together() {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let n1 = b.neg(x);
        let n2 = b.neg(n1);
        let _n3 = b.neg(n2);
        b.store("r", x);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert_eq!(out.len(), 2);
    }
}
