//! Dead-code and dead-store elimination.
//!
//! Roots are the *live stores*: the last store to each variable, plus any
//! store followed by a load of that variable before the next store. Every
//! tuple transitively reachable from a root through operand references is
//! live; everything else is removed.

use pipesched_ir::rewrite::Rewriter;
use pipesched_ir::{BasicBlock, Op, TupleId};

/// Run one DCE pass. `None` if nothing changed.
pub fn run(block: &BasicBlock) -> Option<BasicBlock> {
    let n = block.len();
    let nvars = block.symbols().len();

    // 1. Find live stores: walk backwards; a store is dead if a later store
    //    to the same variable occurs with no intervening load of it.
    let mut overwritten = vec![false; nvars];
    let mut store_live = vec![true; n];
    for t in block.tuples().iter().rev() {
        match t.op {
            Op::Store => {
                let v = t.a.as_var().expect("verified").0 as usize;
                if overwritten[v] {
                    store_live[t.id.index()] = false;
                } else {
                    overwritten[v] = true;
                }
            }
            Op::Load => {
                let v = t.a.as_var().expect("verified").0 as usize;
                overwritten[v] = false;
            }
            _ => {}
        }
    }

    // 2. Mark liveness from live stores backwards through operands.
    let mut live = vec![false; n];
    #[allow(clippy::needless_range_loop)]
    for i in (0..n).rev() {
        let t = &block.tuples()[i];
        let is_root = t.op == Op::Store && store_live[i];
        if is_root {
            live[i] = true;
        }
        if live[i] {
            for r in t.tuple_refs() {
                live[r.index()] = true;
            }
        }
    }

    let mut rewriter = Rewriter::new(n);
    let mut changed = false;
    for (i, &alive) in live.iter().enumerate() {
        if !alive {
            rewriter.remove(TupleId(i as u32));
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    let out = rewriter.apply(block);
    debug_assert!(out.verify().is_ok());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    #[test]
    fn removes_unused_computation() {
        let mut b = BlockBuilder::new("dead");
        let x = b.load("x");
        let y = b.load("y");
        let _unused = b.mul(x, y);
        b.store("r", x);
        let block = b.finish().unwrap();
        let out = run(&block).unwrap();
        // Mul and the load of y both die.
        assert_eq!(out.len(), 2, "\n{out}");
    }

    #[test]
    fn keeps_everything_reachable() {
        let mut b = BlockBuilder::new("live");
        let x = b.load("x");
        let y = b.load("y");
        let m = b.mul(x, y);
        b.store("r", m);
        let block = b.finish().unwrap();
        assert!(run(&block).is_none());
    }

    #[test]
    fn dead_store_removed() {
        let mut b = BlockBuilder::new("ds");
        let c1 = b.constant(1);
        b.store("x", c1);
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        let out = run(&block).unwrap();
        // First store (and its const) die.
        assert_eq!(out.len(), 2, "\n{out}");
        assert_eq!(out.tuple(TupleId(0)).a.as_imm(), Some(2));
    }

    #[test]
    fn store_with_intervening_load_is_live() {
        let mut b = BlockBuilder::new("sl");
        let c1 = b.constant(1);
        b.store("x", c1);
        let l = b.load("x");
        b.store("y", l);
        let c2 = b.constant(2);
        b.store("x", c2);
        let block = b.finish().unwrap();
        // The first store of x is read by the load before the overwrite.
        assert!(run(&block).is_none());
    }

    #[test]
    fn transitively_dead_chain_dies_together() {
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let n1 = b.neg(x);
        let n2 = b.neg(n1);
        let _n3 = b.neg(n2);
        b.store("r", x);
        let block = b.finish().unwrap();
        let out = run(&block).unwrap();
        assert_eq!(out.len(), 2);
    }
}
