//! Algebraic peephole rewrites.
//!
//! * `x + 0`, `0 + x`, `x - 0`, `x * 1`, `1 * x`, `x / 1` → `x`
//! * `x * 0`, `0 * x` → `Const 0`
//! * `Neg(Neg(x))` → `x`
//! * `Mov x` → `x` (copy propagation)
//!
//! Identities are recognized through `Const` tuples, so this pass composes
//! with constant folding across fixpoint iterations.

use pipesched_ir::rewrite::Rewriter;
use pipesched_ir::{BasicBlock, Op, Operand, Tuple, TupleId};

use super::witness::{PeepholeRule, RewriteWitness};

/// Run one peephole pass. `None` if nothing changed; otherwise the new
/// block plus one witness per applied identity.
pub fn run(block: &BasicBlock) -> Option<(BasicBlock, Vec<RewriteWitness>)> {
    let n = block.len();
    let const_val = |o: Operand| -> Option<i64> {
        match o {
            Operand::Tuple(r) => {
                let t = block.tuple(r);
                (t.op == Op::Const).then(|| t.a.as_imm().expect("verified"))
            }
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    };

    let mut rewriter = Rewriter::new(n);
    let mut replace_inplace: Vec<Option<Tuple>> = vec![None; n];
    let mut witnesses = Vec::new();

    for t in block.tuples() {
        let redirect_to = |target: Operand| -> Option<TupleId> { target.as_tuple() };
        // Redirect `t` to `x` under `rule`, recording the witness.
        let mut identity = |x: TupleId, rule: PeepholeRule, w: &mut Vec<RewriteWitness>| {
            rewriter.redirect(t.id, x);
            rewriter.remove(t.id);
            w.push(RewriteWitness::Identity {
                tuple: t.id,
                target: x,
                rule,
            });
        };
        match t.op {
            Op::Add => {
                if const_val(t.b) == Some(0) {
                    if let Some(x) = redirect_to(t.a) {
                        identity(x, PeepholeRule::AddZero, &mut witnesses);
                    }
                } else if const_val(t.a) == Some(0) {
                    if let Some(x) = redirect_to(t.b) {
                        identity(x, PeepholeRule::AddZero, &mut witnesses);
                    }
                }
            }
            Op::Sub if const_val(t.b) == Some(0) => {
                if let Some(x) = redirect_to(t.a) {
                    identity(x, PeepholeRule::SubZero, &mut witnesses);
                }
            }
            Op::Mul => {
                if const_val(t.b) == Some(1) {
                    if let Some(x) = redirect_to(t.a) {
                        identity(x, PeepholeRule::MulOne, &mut witnesses);
                    }
                } else if const_val(t.a) == Some(1) {
                    if let Some(x) = redirect_to(t.b) {
                        identity(x, PeepholeRule::MulOne, &mut witnesses);
                    }
                } else if const_val(t.a) == Some(0) || const_val(t.b) == Some(0) {
                    replace_inplace[t.id.index()] = Some(Tuple {
                        id: t.id,
                        op: Op::Const,
                        a: Operand::Imm(0),
                        b: Operand::None,
                    });
                    witnesses.push(RewriteWitness::Annul {
                        tuple: t.id,
                        value: 0,
                    });
                }
            }
            Op::Div if const_val(t.b) == Some(1) => {
                if let Some(x) = redirect_to(t.a) {
                    identity(x, PeepholeRule::DivOne, &mut witnesses);
                }
            }
            Op::Neg => {
                if let Some(inner) = t.a.as_tuple() {
                    let it = block.tuple(inner);
                    if it.op == Op::Neg {
                        if let Some(x) = it.a.as_tuple() {
                            identity(x, PeepholeRule::NegNeg, &mut witnesses);
                        }
                    }
                }
            }
            Op::Mov => {
                if let Some(x) = t.a.as_tuple() {
                    identity(x, PeepholeRule::MovCopy, &mut witnesses);
                }
            }
            _ => {}
        }
    }

    if witnesses.is_empty() {
        return None;
    }

    // Apply in-place replacements first, then the structural rewrite.
    let mut tuples = block.tuples().to_vec();
    for (i, rep) in replace_inplace.into_iter().enumerate() {
        if let Some(rep) = rep {
            tuples[i] = rep;
        }
    }
    let mut staged = block.clone();
    staged.replace_tuples(tuples);
    let out = rewriter.apply(&staged);
    debug_assert!(out.verify().is_ok());
    Some((out, witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    fn ops(block: &BasicBlock) -> Vec<Op> {
        block.tuples().iter().map(|t| t.op).collect()
    }

    fn run1(block: &BasicBlock) -> Option<BasicBlock> {
        run(block).map(|(b, _)| b)
    }

    #[test]
    fn add_zero_vanishes() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let z = b.constant(0);
        let a = b.add(x, z);
        b.store("r", a);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert!(!ops(&out).contains(&Op::Add), "\n{out}");
        // Store now references the load directly.
        let store = out.tuples().last().unwrap();
        assert_eq!(store.b, Operand::Tuple(TupleId(0)));
    }

    #[test]
    fn mul_by_zero_becomes_const() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let z = b.constant(0);
        let m = b.mul(x, z);
        b.store("r", m);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        let consts = out.tuples().iter().filter(|t| t.op == Op::Const).count();
        assert_eq!(consts, 2);
        assert!(!ops(&out).contains(&Op::Mul));
    }

    #[test]
    fn double_negation_cancels() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let n1 = b.neg(x);
        let n2 = b.neg(n1);
        b.store("r", n2);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        // Outer neg is gone; inner neg is now dead (DCE's job).
        let store = out.tuples().last().unwrap();
        assert_eq!(store.b, Operand::Tuple(TupleId(0)));
    }

    #[test]
    fn mov_is_copy_propagated() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let m = b.mov(x);
        b.store("r", m);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert!(!ops(&out).contains(&Op::Mov));
    }

    #[test]
    fn div_and_sub_identities() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let one = b.constant(1);
        let zero = b.constant(0);
        let d = b.div(x, one);
        let s = b.sub(d, zero);
        b.store("r", s);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert!(!ops(&out).contains(&Op::Div));
        assert!(!ops(&out).contains(&Op::Sub));
    }

    #[test]
    fn sub_zero_minuend_not_rewritten() {
        // 0 - x is NOT x; make sure we don't touch it.
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let zero = b.constant(0);
        let s = b.sub(zero, x);
        b.store("r", s);
        let block = b.finish().unwrap();
        assert!(run(&block).is_none());
    }

    #[test]
    fn no_identities_no_change() {
        let mut b = BlockBuilder::new("p");
        let x = b.load("x");
        let y = b.load("y");
        let a = b.add(x, y);
        b.store("r", a);
        let block = b.finish().unwrap();
        assert!(run(&block).is_none());
    }
}
