//! Common subexpression elimination by value numbering.
//!
//! Two tuples are the same expression when they have the same operation and
//! (canonically ordered, for commutative ops) the same operands. `Load`s
//! additionally key on the variable's *store epoch* so a load before and a
//! load after a store of the same variable are never merged. `Store`s are
//! never merged (they are effects, not values).

use std::collections::HashMap;

use pipesched_ir::rewrite::Rewriter;
use pipesched_ir::{BasicBlock, Op, Operand, TupleId};

use super::witness::RewriteWitness;

/// Run one CSE pass. `None` if nothing changed; otherwise the new block
/// plus one `Merge` witness per eliminated duplicate.
pub fn run(block: &BasicBlock) -> Option<(BasicBlock, Vec<RewriteWitness>)> {
    let mut store_epoch: Vec<u32> = vec![0; block.symbols().len()];
    // Value-number key → first tuple computing it.
    let mut table: HashMap<(Op, u32, Operand, Operand), TupleId> = HashMap::new();
    let mut rewriter = Rewriter::new(block.len());
    // Resolved replacement for each tuple (identity unless CSE'd), so later
    // keys compare post-replacement operands.
    let mut resolved: Vec<TupleId> = block.ids().collect();
    let mut witnesses = Vec::new();

    for t in block.tuples() {
        let resolve = |o: Operand, resolved: &[TupleId]| -> Operand {
            match o {
                Operand::Tuple(r) => Operand::Tuple(resolved[r.index()]),
                other => other,
            }
        };
        match t.op {
            Op::Store => {
                let v = t.a.as_var().expect("verified").0 as usize;
                store_epoch[v] += 1;
                continue;
            }
            Op::Load => {
                let v = t.a.as_var().expect("verified");
                let key = (
                    Op::Load,
                    store_epoch[v.0 as usize],
                    Operand::Var(v),
                    Operand::None,
                );
                if let Some(&first) = table.get(&key) {
                    rewriter.redirect(t.id, first);
                    rewriter.remove(t.id);
                    resolved[t.id.index()] = first;
                    witnesses.push(RewriteWitness::Merge {
                        dup: t.id,
                        into: first,
                    });
                } else {
                    table.insert(key, t.id);
                }
            }
            _ => {
                let (a, b) = {
                    pipesched_ir::Tuple {
                        id: t.id,
                        op: t.op,
                        a: resolve(t.a, &resolved),
                        b: resolve(t.b, &resolved),
                    }
                    .canonical_operands()
                };
                let key = (t.op, 0, a, b);
                if let Some(&first) = table.get(&key) {
                    rewriter.redirect(t.id, first);
                    rewriter.remove(t.id);
                    resolved[t.id.index()] = first;
                    witnesses.push(RewriteWitness::Merge {
                        dup: t.id,
                        into: first,
                    });
                } else {
                    table.insert(key, t.id);
                }
            }
        }
    }

    if witnesses.is_empty() {
        return None;
    }
    let out = rewriter.apply(block);
    debug_assert!(out.verify().is_ok());
    Some((out, witnesses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipesched_ir::BlockBuilder;

    fn run1(block: &BasicBlock) -> Option<BasicBlock> {
        run(block).map(|(b, _)| b)
    }

    #[test]
    fn merges_identical_binaries() {
        let mut b = BlockBuilder::new("cse");
        let x = b.load("x");
        let y = b.load("y");
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        let m = b.mul(a1, a2);
        b.store("r", m);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        let adds = out.tuples().iter().filter(|t| t.op == Op::Add).count();
        assert_eq!(adds, 1);
        // The mul now squares the single add.
        let mul = out.tuples().iter().find(|t| t.op == Op::Mul).unwrap();
        assert_eq!(mul.a, mul.b);
    }

    #[test]
    fn commutative_operands_merge_either_order() {
        let mut b = BlockBuilder::new("comm");
        let x = b.load("x");
        let y = b.load("y");
        let a1 = b.add(x, y);
        let a2 = b.add(y, x);
        let s = b.sub(a1, a2);
        b.store("r", s);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert_eq!(out.tuples().iter().filter(|t| t.op == Op::Add).count(), 1);
    }

    #[test]
    fn non_commutative_respects_order() {
        let mut b = BlockBuilder::new("nc");
        let x = b.load("x");
        let y = b.load("y");
        let s1 = b.sub(x, y);
        let s2 = b.sub(y, x);
        let a = b.add(s1, s2);
        b.store("r", a);
        let block = b.finish().unwrap();
        // Nothing merges: sub(x,y) ≠ sub(y,x), loads are distinct vars.
        assert!(run(&block).is_none());
    }

    #[test]
    fn loads_across_store_do_not_merge() {
        let mut b = BlockBuilder::new("epoch");
        let l1 = b.load("x");
        let c = b.constant(1);
        b.store("x", c);
        let l2 = b.load("x");
        let a = b.add(l1, l2);
        b.store("r", a);
        let block = b.finish().unwrap();
        // The two loads of x straddle a store; only the consts... there are
        // no duplicate consts, so nothing changes at all.
        assert!(run(&block).is_none());
    }

    #[test]
    fn duplicate_loads_same_epoch_merge() {
        let mut b = BlockBuilder::new("dup");
        let l1 = b.load("x");
        let l2 = b.load("x");
        let a = b.add(l1, l2);
        b.store("r", a);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert_eq!(out.tuples().iter().filter(|t| t.op == Op::Load).count(), 1);
    }

    #[test]
    fn chained_duplicates_collapse_in_one_pass() {
        // (a+b) and (a+b) merge; then (x*x) keyed on the *resolved* operand
        // also merges with an earlier (x*x).
        let mut b = BlockBuilder::new("chain");
        let x = b.load("x");
        let y = b.load("y");
        let a1 = b.add(x, y);
        let m1 = b.mul(a1, a1);
        let a2 = b.add(x, y);
        let m2 = b.mul(a2, a2);
        let s = b.sub(m1, m2);
        b.store("r", s);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert_eq!(
            out.tuples().iter().filter(|t| t.op == Op::Mul).count(),
            1,
            "\n{out}"
        );
    }

    #[test]
    fn identical_consts_merge() {
        let mut b = BlockBuilder::new("k");
        let c1 = b.constant(42);
        let c2 = b.constant(42);
        let a = b.add(c1, c2);
        b.store("r", a);
        let block = b.finish().unwrap();
        let out = run1(&block).unwrap();
        assert_eq!(out.tuples().iter().filter(|t| t.op == Op::Const).count(), 1);
    }
}
