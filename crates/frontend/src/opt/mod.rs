//! The traditional optimizer (§3.1): constant folding with value
//! propagation, common subexpression elimination, peephole optimizations,
//! and dead-code elimination, run to a fixpoint by a small pass manager.
//!
//! Every pass is semantics-preserving under the reference interpreter's
//! total semantics ([`crate::interp`]), which the property tests verify on
//! random programs.

pub mod constant_fold;
pub mod cse;
pub mod dce;
pub mod peephole;
pub mod witness;

use pipesched_ir::BasicBlock;

use witness::{OptTranscript, PassKind, PassWitness, RewriteWitness};

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Constant folding + value propagation through stores.
    pub constant_fold: bool,
    /// Common subexpression elimination.
    pub cse: bool,
    /// Algebraic peephole rewrites.
    pub peephole: bool,
    /// Dead code (and dead store) elimination.
    pub dce: bool,
    /// Maximum fixpoint iterations (safety net; convergence is typical in
    /// 2–3 rounds).
    pub max_iterations: u32,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            constant_fold: true,
            cse: true,
            peephole: true,
            dce: true,
            max_iterations: 10,
        }
    }
}

impl OptConfig {
    /// A config with every pass disabled (identity pipeline).
    pub fn none() -> Self {
        OptConfig {
            constant_fold: false,
            cse: false,
            peephole: false,
            dce: false,
            max_iterations: 1,
        }
    }
}

/// What the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Fixpoint iterations executed.
    pub iterations: u32,
    /// Tuples before optimization.
    pub tuples_before: usize,
    /// Tuples after optimization.
    pub tuples_after: usize,
    /// Times constant folding changed the block.
    pub constant_folds: u32,
    /// Times CSE changed the block.
    pub cse_hits: u32,
    /// Times peephole changed the block.
    pub peephole_hits: u32,
    /// Times DCE changed the block.
    pub dce_removals: u32,
    /// Individual tuples folded to constants (`Fold` witnesses).
    pub fold_rewrites: u32,
    /// Individual store-to-load forwardings (`Forward` witnesses).
    pub forward_rewrites: u32,
    /// Individual duplicates merged by CSE (`Merge` witnesses).
    pub cse_merges: u32,
    /// Individual peephole identities applied (`Identity`/`Annul`).
    pub peephole_rewrites: u32,
    /// Individual tuples deleted by DCE (`Delete` witnesses).
    pub dce_deletions: u32,
}

impl OptStats {
    /// Total individual rewrites across all passes and iterations.
    pub fn total_rewrites(&self) -> u32 {
        self.fold_rewrites
            + self.forward_rewrites
            + self.cse_merges
            + self.peephole_rewrites
            + self.dce_deletions
    }

    /// Tally one pass's witness list into the per-rewrite counters.
    fn count_rewrites(&mut self, rewrites: &[RewriteWitness]) {
        for w in rewrites {
            match w {
                RewriteWitness::Fold { .. } => self.fold_rewrites += 1,
                RewriteWitness::Forward { .. } => self.forward_rewrites += 1,
                RewriteWitness::Merge { .. } => self.cse_merges += 1,
                RewriteWitness::Identity { .. } | RewriteWitness::Annul { .. } => {
                    self.peephole_rewrites += 1;
                }
                RewriteWitness::Delete { .. } => self.dce_deletions += 1,
            }
        }
    }
}

/// Run the configured passes to a fixpoint. Returns the optimized block and
/// statistics. The input block must verify.
pub fn optimize(block: &BasicBlock, config: &OptConfig) -> (BasicBlock, OptStats) {
    let (optimized, stats, _) = optimize_with_transcript(block, config);
    (optimized, stats)
}

/// [`optimize`], additionally returning the full rewrite-witness
/// transcript for translation validation (`pipesched-analyze` replays it
/// against independent dataflow facts of the input block).
pub fn optimize_with_transcript(
    block: &BasicBlock,
    config: &OptConfig,
) -> (BasicBlock, OptStats, OptTranscript) {
    debug_assert!(block.verify().is_ok());
    let _opt = pipesched_trace::span_with("frontend.optimize", block.len() as i64);
    let mut current = block.clone();
    let mut stats = OptStats {
        tuples_before: block.len(),
        ..OptStats::default()
    };
    let mut transcript = OptTranscript::default();

    // Record one changed pass: tally rewrite counters, emit the per-pass
    // rewrite count on the trace, append to the transcript.
    let mut record =
        |pass: PassKind, rewrites: Vec<RewriteWitness>, iteration: u32, stats: &mut OptStats| {
            stats.count_rewrites(&rewrites);
            pipesched_trace::point2("opt.rewrites", i64::from(iteration), rewrites.len() as i64);
            transcript.passes.push(PassWitness { pass, rewrites });
        };

    for _ in 0..config.max_iterations {
        let mut changed = false;
        if config.constant_fold {
            let _s = pipesched_trace::span_with("opt.constant_fold", i64::from(stats.iterations));
            if let Some((next, wits)) = constant_fold::run(&current) {
                current = next;
                stats.constant_folds += 1;
                record(PassKind::ConstantFold, wits, stats.iterations, &mut stats);
                changed = true;
            }
        }
        if config.cse {
            let _s = pipesched_trace::span_with("opt.cse", i64::from(stats.iterations));
            if let Some((next, wits)) = cse::run(&current) {
                current = next;
                stats.cse_hits += 1;
                record(PassKind::Cse, wits, stats.iterations, &mut stats);
                changed = true;
            }
        }
        if config.peephole {
            let _s = pipesched_trace::span_with("opt.peephole", i64::from(stats.iterations));
            if let Some((next, wits)) = peephole::run(&current) {
                current = next;
                stats.peephole_hits += 1;
                record(PassKind::Peephole, wits, stats.iterations, &mut stats);
                changed = true;
            }
        }
        if config.dce {
            let _s = pipesched_trace::span_with("opt.dce", i64::from(stats.iterations));
            if let Some((next, wits)) = dce::run(&current) {
                current = next;
                stats.dce_removals += 1;
                record(PassKind::Dce, wits, stats.iterations, &mut stats);
                changed = true;
            }
        }
        stats.iterations += 1;
        if !changed {
            break;
        }
    }

    debug_assert!(current.verify().is_ok(), "optimizer broke the block");
    stats.tuples_after = current.len();
    (current, stats, transcript)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_program;

    fn optimize_src(src: &str) -> (BasicBlock, OptStats) {
        let block = lower("t", &parse_program(src).unwrap());
        optimize(&block, &OptConfig::default())
    }

    #[test]
    fn folds_and_cleans_constant_program() {
        let (block, stats) = optimize_src("x = 2 + 3;\ny = x * 4;\n");
        // Everything folds to constants: two Consts + two Stores.
        assert_eq!(block.len(), 4, "\n{block}");
        assert!(stats.constant_folds > 0);
    }

    #[test]
    fn cse_merges_repeated_subexpressions() {
        let (block, stats) = optimize_src("x = a + b;\ny = a + b;\n");
        let adds = block
            .tuples()
            .iter()
            .filter(|t| t.op == pipesched_ir::Op::Add)
            .count();
        assert_eq!(adds, 1, "\n{block}");
        assert!(stats.cse_hits > 0);
    }

    #[test]
    fn disabled_config_is_identity() {
        let block = lower("t", &parse_program("x = a + 0;").unwrap());
        let (out, stats) = optimize(&block, &OptConfig::none());
        assert_eq!(out, block);
        assert_eq!(stats.tuples_before, stats.tuples_after);
    }

    #[test]
    fn fixpoint_terminates() {
        let (_, stats) =
            optimize_src("a = b * 1 + 0;\nc = a / 1;\nd = c - 0;\ne = d + d;\nf = e * 0;\n");
        assert!(stats.iterations <= OptConfig::default().max_iterations);
    }
}
