//! Recursive-descent parser.
//!
//! Grammar:
//!
//! ```text
//! program   := statement* EOF
//! statement := IDENT '=' expr ';'
//! expr      := term (('+'|'-') term)*
//! term      := factor (('*'|'/') factor)*
//! factor    := '-' factor | INT | IDENT | '(' expr ')'
//! ```

use crate::ast::{Assign, BinOp, Expr, Program};
use crate::error::FrontendError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a whole program.
pub fn parse_program(source: &str) -> Result<Program, FrontendError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while p.peek().kind != TokenKind::Eof {
        statements.push(p.statement()?);
    }
    Ok(Program { statements })
}

/// Parse a program with `name:` labels splitting it into a straight-line
/// sequence of basic blocks. Statements before the first label form an
/// implicit `entry` region; empty regions are preserved.
pub fn parse_labeled_program(source: &str) -> Result<Vec<(String, Program)>, FrontendError> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut regions: Vec<(String, Program)> = Vec::new();
    let mut current = (
        "entry".to_string(),
        Program {
            statements: Vec::new(),
        },
    );
    let mut saw_any = false;
    while p.peek().kind != TokenKind::Eof {
        if let Some(label) = p.try_label() {
            if saw_any || !current.1.statements.is_empty() {
                regions.push(current);
            }
            current = (
                label,
                Program {
                    statements: Vec::new(),
                },
            );
            saw_any = true;
            continue;
        }
        current.1.statements.push(p.statement()?);
    }
    regions.push(current);
    Ok(regions)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &'static str) -> FrontendError {
        let t = self.peek();
        FrontendError::UnexpectedToken {
            found: t.kind.to_string(),
            expected,
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: TokenKind, expected: &'static str) -> Result<(), FrontendError> {
        if self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    /// Consume `Ident ':'` if that is what comes next.
    fn try_label(&mut self) -> Option<String> {
        if let TokenKind::Ident(name) = &self.peek().kind {
            if self.pos + 1 < self.tokens.len()
                && self.tokens[self.pos + 1].kind == TokenKind::Colon
            {
                let name = name.clone();
                self.advance(); // ident
                self.advance(); // colon
                return Some(name);
            }
        }
        None
    }

    fn statement(&mut self) -> Result<Assign, FrontendError> {
        let line = self.peek().line;
        let target = match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                name
            }
            _ => return Err(self.err("a variable name")),
        };
        self.expect(TokenKind::Assign, "`=`")?;
        let value = self.expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(Assign {
            target,
            value,
            line,
        })
    }

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, FrontendError> {
        match self.peek().kind.clone() {
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(v))
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Var(name))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(self.err("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_program() {
        let p = parse_program("b = 15;\na = b * a;\n").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.statements[0].target, "b");
        assert_eq!(p.statements[0].value, Expr::Literal(15));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("x = a + b * c;").unwrap();
        match &p.statements[0].value {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_program("x = (a + b) * c;").unwrap();
        match &p.statements[0].value {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let p = parse_program("x = a - b - c;").unwrap();
        // (a - b) - c
        match &p.statements[0].value {
            Expr::Binary {
                op: BinOp::Sub,
                lhs,
                rhs,
            } => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Sub, .. }));
                assert_eq!(**rhs, Expr::Var("c".into()));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn unary_minus_nests() {
        let p = parse_program("x = --a;").unwrap();
        match &p.statements[0].value {
            Expr::Neg(inner) => assert!(matches!(**inner, Expr::Neg(_))),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn labeled_program_splits_into_regions() {
        let src = "x = 1;\nloop_body:\ny = x * 2;\nz = y + 1;\nexit:\nr = z;\n";
        let regions = parse_labeled_program(src).unwrap();
        let names: Vec<&str> = regions.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["entry", "loop_body", "exit"]);
        assert_eq!(regions[0].1.statements.len(), 1);
        assert_eq!(regions[1].1.statements.len(), 2);
        assert_eq!(regions[2].1.statements.len(), 1);
    }

    #[test]
    fn unlabeled_source_is_one_entry_region() {
        let regions = parse_labeled_program("a = 1;\n").unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].0, "entry");
    }

    #[test]
    fn label_requires_colon_not_assign() {
        // `x = 1;` must not be mistaken for a label.
        let regions = parse_labeled_program("x = 1;").unwrap();
        assert_eq!(regions[0].1.statements.len(), 1);
        // A stray colon is an error.
        assert!(parse_labeled_program("x = 1 : ;").is_err());
    }

    #[test]
    fn error_positions() {
        let e = parse_program("x = ;").unwrap_err();
        assert!(matches!(e, FrontendError::UnexpectedToken { line: 1, .. }));
        let e = parse_program("x = (a;").unwrap_err();
        assert!(e.to_string().contains("`)`"), "{e}");
        let e = parse_program("= 3;").unwrap_err();
        assert!(e.to_string().contains("variable name"), "{e}");
        let e = parse_program("x = 3").unwrap_err();
        assert!(e.to_string().contains("`;`"), "{e}");
    }
}
