//! Front-end error type.

use std::fmt;

/// Errors from lexing or parsing source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// A character the lexer does not recognize.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
    },
    /// An integer literal out of `i64` range.
    IntOutOfRange {
        /// The literal text.
        text: String,
        /// 1-based line.
        line: usize,
    },
    /// The parser found something other than what the grammar requires.
    UnexpectedToken {
        /// Description of what was found.
        found: String,
        /// What the parser expected.
        expected: &'static str,
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnexpectedChar { ch, line, col } => {
                write!(f, "{line}:{col}: unexpected character `{ch}`")
            }
            FrontendError::IntOutOfRange { text, line } => {
                write!(f, "{line}: integer literal `{text}` out of range")
            }
            FrontendError::UnexpectedToken {
                found,
                expected,
                line,
                col,
            } => write!(f, "{line}:{col}: expected {expected}, found {found}"),
        }
    }
}

impl std::error::Error for FrontendError {}
