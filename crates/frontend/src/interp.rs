//! A reference interpreter for basic blocks.
//!
//! Gives tuple IR a *total* semantics so the optimizer can be property-
//! tested: arithmetic wraps, division by zero yields 0, and variables not
//! written before being read take their initial-environment value (default
//! 0). Every optimization pass must preserve the final variable state under
//! this semantics.

use std::collections::HashMap;

use pipesched_ir::{BasicBlock, Op, Operand};

/// The result of interpreting a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interpretation {
    /// Final memory: variable name → value (only variables that exist in
    /// the block's symbol table appear).
    pub memory: HashMap<String, i64>,
}

/// Interpret `block` starting from `initial` variable values.
pub fn interpret(block: &BasicBlock, initial: &HashMap<String, i64>) -> Interpretation {
    let n = block.len();
    let mut values: Vec<i64> = vec![0; n];
    let mut memory: HashMap<String, i64> = HashMap::new();
    for i in 0..block.symbols().len() {
        let name = block
            .symbols()
            .name(pipesched_ir::VarId(i as u32))
            .expect("dense symbol table")
            .to_string();
        let v = initial.get(&name).copied().unwrap_or(0);
        memory.insert(name, v);
    }

    let read = |values: &[i64], o: Operand| -> i64 {
        match o {
            Operand::Tuple(t) => values[t.index()],
            Operand::Imm(v) => v,
            Operand::Var(_) | Operand::None => unreachable!("checked by verify()"),
        }
    };

    for t in block.tuples() {
        let v = match t.op {
            Op::Const => t.a.as_imm().expect("verified"),
            Op::Load => {
                let name = block
                    .symbols()
                    .name(t.a.as_var().expect("verified"))
                    .unwrap();
                memory[name]
            }
            Op::Store => {
                let name = block
                    .symbols()
                    .name(t.a.as_var().expect("verified"))
                    .unwrap()
                    .to_string();
                let v = read(&values, t.b);
                memory.insert(name, v);
                v
            }
            Op::Add => read(&values, t.a).wrapping_add(read(&values, t.b)),
            Op::Sub => read(&values, t.a).wrapping_sub(read(&values, t.b)),
            Op::Mul => read(&values, t.a).wrapping_mul(read(&values, t.b)),
            Op::Div => {
                let d = read(&values, t.b);
                if d == 0 {
                    0
                } else {
                    read(&values, t.a).wrapping_div(d)
                }
            }
            Op::Neg => read(&values, t.a).wrapping_neg(),
            Op::Mov => read(&values, t.a),
            Op::Nop => 0,
        };
        values[t.id.index()] = v;
    }

    Interpretation { memory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse_program;

    fn run(src: &str, init: &[(&str, i64)]) -> HashMap<String, i64> {
        let block = lower("t", &parse_program(src).unwrap());
        let initial: HashMap<String, i64> = init.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        interpret(&block, &initial).memory
    }

    #[test]
    fn figure3_semantics() {
        let m = run("b = 15;\na = b * a;\n", &[("a", 3)]);
        assert_eq!(m["b"], 15);
        assert_eq!(m["a"], 45);
    }

    #[test]
    fn uninitialized_reads_default_to_zero() {
        let m = run("x = y + 1;", &[]);
        assert_eq!(m["x"], 1);
        assert_eq!(m["y"], 0);
    }

    #[test]
    fn division_by_zero_is_zero() {
        let m = run("x = 7 / z;", &[("z", 0)]);
        assert_eq!(m["x"], 0);
    }

    #[test]
    fn overflow_wraps() {
        let m = run("x = big * big;", &[("big", i64::MAX)]);
        assert_eq!(m["x"], i64::MAX.wrapping_mul(i64::MAX));
    }

    #[test]
    fn sequencing_respects_program_order() {
        let m = run("a = 1;\nb = a + 1;\na = 10;\nc = a + b;\n", &[]);
        assert_eq!(m["b"], 2);
        assert_eq!(m["c"], 12);
    }
}
