//! `pipesched` — optimal pipeline scheduling from the command line.
//!
//! ```text
//! pipesched <input> [--machine NAME|FILE.json] [--emit WHAT] [--lambda N]
//!                   [--window N] [--parallel] [--threads N] [--no-optimize]
//!                   [--regs N]
//! pipesched lint [INPUT ...] [--machine NAME|FILE] [--json] [--no-optimize]
//!                [--frontend] [--strict]
//! pipesched lint --concurrency [DIR ...] [--json] [--strict]
//! pipesched certify <input> [--machine NAME|FILE] [--lambda N] [--window N]
//!                   [--parallel] [--json] [--no-optimize]
//!
//! <input>      a source file of assignment statements, a tuple file
//!              (first line `;; tuples`), `-` for stdin, or (for lint) a
//!              directory searched recursively for .src/.tuples files
//! --machine    preset name (paper-simulation, paper-table2, deep-pipeline,
//!              functional-units, section2-example, unpipelined) or a JSON
//!              machine description; default paper-simulation
//! --emit       asm | padded | trace | gantt | tuples | dot | stats  (default asm)
//! --lambda     curtail point (default 50000)
//! --window     windowed scheduling with the given window length
//! --parallel   use the work-stealing parallel branch-and-bound
//! --threads    worker threads for the parallel search (implies --parallel;
//!              0 or omitted means one per CPU)
//! --backend    bnb (default) | sat | race — the exact engine: the paper's
//!              branch-and-bound, the CDCL SAT portfolio, or both raced and
//!              cross-certified (any disagreement is a hard error)
//! --no-optimize  skip the front-end optimizer
//! --regs       registers available for allocation (default: exactly the
//!              schedule's pressure)
//! ```

use std::io::{Read, Write};
use std::process::ExitCode;

use pipesched::analyze;
use pipesched::core::proof::{Certificate, ProofLogger};
use pipesched::core::{
    search, search_with_proof, windowed_schedule, Backend, SchedContext, Scheduler, SearchConfig,
};
use pipesched::frontend::{
    compile_unoptimized, lower_with_lines, parse_labeled_program, OptConfig, OptStats,
};
use pipesched::ir::{dot, parse::parse_block, BasicBlock, DepDag};
use pipesched::machine::{config as machine_config, presets, Machine};
use pipesched::regalloc::{allocate, emit, max_pressure};
use pipesched::sim::{pad_schedule, TimingModel, Trace};

struct Options {
    input: String,
    machine: String,
    emit: String,
    lambda: u64,
    window: Option<usize>,
    parallel: bool,
    threads: usize,
    optimize: bool,
    regs: Option<usize>,
    json: bool,
    proof: Option<String>,
    backend: Backend,
}

fn usage() -> ! {
    eprintln!(
        "usage: pipesched [schedule] <input> [--machine NAME|FILE.json] [--emit asm|padded|trace|gantt|tuples|dot|stats]\n\
         \x20                [--lambda N] [--window N] [--parallel] [--threads N]\n\
         \x20                [--backend bnb|sat|race]\n\
         \x20                [--no-optimize] [--regs N] [--json] [--proof FILE.ndjson]\n\
         \x20      pipesched lint [INPUT|DIR ...] [--machine NAME|FILE] [--json] [--no-optimize]\n\
         \x20                [--frontend] [--strict]\n\
         \x20      pipesched lint --concurrency [DIR ...] [--json] [--strict]\n\
         \x20      pipesched certify <input> [--machine NAME|FILE] [--lambda N] [--window N]\n\
         \x20                [--parallel] [--threads N] [--json] [--no-optimize]\n\
         \x20                [--proof FILE.ndjson]\n\
         \x20      pipesched prove [INPUT ...] [--machine NAME|FILE] [--lambda N] [--json]\n\
         \x20                [--no-optimize] [--proof FILE.ndjson]\n\
         \x20      pipesched serve [--workers N] [--nodes N] [--cache N] [--shards N]\n\
         \x20                [--threads N] [--tcp ADDR[:PORT]] [--conns N] [--cache-file FILE]\n\
         \x20                [--metrics] [--trace] [--verify-opt] [--backend bnb|sat|race]\n\
         \x20      pipesched batch <requests.ndjson> [--workers N] [--nodes N] [--cache N]\n\
         \x20                [--threads N] [--check] [--prove] [--require-hits] [--json]\n\
         \x20                [--quiet] [--tcp ADDR[:PORT]] [--verify-opt] [--backend bnb|sat|race]\n\
         \x20      pipesched stats [<requests.ndjson> | --tcp ADDR[:PORT]] [--json | --prom]\n\
         \x20                [--workers N] [--nodes N]\n\
         \x20      pipesched trace <input> [--machine NAME|FILE] [--lambda N] [--no-optimize]\n\
         \x20                [--flame | --ndjson]\n\
         \x20      pipesched flight [<requests.ndjson> | --tcp ADDR[:PORT]] [-n N]\n\
         \x20                [--ndjson | --flame | --dumps] [--workers N] [--nodes N]"
    );
    std::process::exit(2)
}

fn parse_options() -> Result<Options, String> {
    let mut input = None;
    let mut opts = Options {
        input: String::new(),
        machine: "paper-simulation".into(),
        emit: "asm".into(),
        lambda: 50_000,
        window: None,
        parallel: false,
        threads: 0,
        optimize: true,
        regs: None,
        json: false,
        proof: None,
        backend: Backend::Bnb,
    };
    // `pipesched schedule <input>` is an explicit alias for the default
    // scheduling pipeline.
    let skip = if std::env::args().nth(1).as_deref() == Some("schedule") {
        2
    } else {
        1
    };
    let mut args = std::env::args().skip(skip);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--machine" => opts.machine = value()?,
            "--emit" => opts.emit = value()?,
            "--lambda" => opts.lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--window" => {
                let w: usize = value()?.parse().map_err(|e| format!("--window: {e}"))?;
                if w == 0 {
                    return Err("--window must be at least 1".into());
                }
                opts.window = Some(w);
            }
            "--regs" => opts.regs = Some(value()?.parse().map_err(|e| format!("--regs: {e}"))?),
            "--json" => opts.json = true,
            "--proof" => opts.proof = Some(value()?),
            "--parallel" => opts.parallel = true,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
                opts.parallel = true;
            }
            "--backend" => {
                let name = value()?;
                opts.backend = Backend::from_name(&name)
                    .ok_or_else(|| format!("--backend: unknown backend `{name}` (bnb|sat|race)"))?;
            }
            "--no-optimize" => opts.optimize = false,
            "--help" | "-h" => usage(),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            "-" if input.is_none() => input = Some("-".into()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    opts.input = input.ok_or("missing input file")?;
    Ok(opts)
}

fn load_machine(spec: &str) -> Result<Machine, String> {
    match spec {
        "paper-simulation" => Ok(presets::paper_simulation()),
        "paper-table2" => Ok(presets::table2_example()),
        "deep-pipeline" => Ok(presets::deep_pipeline()),
        "functional-units" => Ok(presets::functional_units()),
        "section2-example" => Ok(presets::section2_example()),
        "unpipelined" => Ok(presets::unpipelined()),
        path if path.ends_with(".json") => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            machine_config::from_json(&text).map_err(|e| e.to_string())
        }
        path if path.ends_with(".mach") => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            pipesched::machine::textfmt::parse(&text).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown machine `{other}` (preset name, .json or .mach file expected)"
        )),
    }
}

/// Read an input argument (`-` for stdin) into a string.
fn read_input(input: &str) -> Result<String, String> {
    if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("read {input}: {e}"))
    }
}

/// Optimize under translation validation: every rewrite the optimizer
/// performs must be justified by its witness transcript, or the CLI
/// refuses the block outright with the `A05xx` report.
fn optimize_checked(block: &BasicBlock) -> Result<(BasicBlock, OptStats), String> {
    analyze::optimize_verified(block, &OptConfig::default()).map_err(|rej| rej.to_string())
}

fn load_block_from(input: &str, optimize: bool) -> Result<BasicBlock, String> {
    load_block_with_stats(input, optimize).map(|(block, _)| block)
}

/// [`load_block_from`], additionally returning the optimizer statistics
/// when the front-end optimizer ran (source input with optimization on).
fn load_block_with_stats(
    input: &str,
    optimize: bool,
) -> Result<(BasicBlock, Option<OptStats>), String> {
    let text = read_input(input)?;
    // Tuple files start with a `;; tuples` marker; everything else is
    // source text.
    if text.trim_start().starts_with(";; tuples") {
        return Ok((parse_block(input, &text).map_err(|e| e.to_string())?, None));
    }
    let block = compile_unoptimized(input, &text).map_err(|e| e.to_string())?;
    if optimize {
        let (optimized, stats) = optimize_checked(&block)?;
        Ok((optimized, Some(stats)))
    } else {
        Ok((block, None))
    }
}

fn main() -> ExitCode {
    // `lint` and `certify` are subcommands with their own option grammar;
    // everything else is the original scheduling pipeline.
    let dispatch = match std::env::args().nth(1).as_deref() {
        Some("lint") => run_lint(),
        Some("certify") => run_certify(),
        Some("prove") => run_prove(),
        Some("serve") => run_serve(),
        Some("batch") => run_batch_cmd(),
        Some("stats") => run_stats(),
        Some("trace") => run_trace(),
        Some("flight") => run_flight(),
        _ => run().map(|()| ExitCode::SUCCESS),
    };
    match dispatch {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pipesched: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Shared option grammar of the `lint` and `certify` subcommands.
struct AnalyzeOptions {
    inputs: Vec<String>,
    machine: String,
    json: bool,
    optimize: bool,
    lambda: u64,
    window: Option<usize>,
    parallel: bool,
    threads: usize,
    proof: Option<String>,
    /// `lint --frontend`: validate the optimizer transcript and lint the
    /// optimized block too.
    frontend: bool,
    /// `lint --strict`: warnings also fail the exit code.
    strict: bool,
    /// `lint --concurrency`: static lock-order scan over Rust sources
    /// instead of IR linting (inputs become directories to scan).
    concurrency: bool,
}

fn parse_analyze_options() -> Result<AnalyzeOptions, String> {
    let mut opts = AnalyzeOptions {
        inputs: Vec::new(),
        machine: "paper-simulation".into(),
        json: false,
        optimize: true,
        lambda: 50_000,
        window: None,
        parallel: false,
        threads: 0,
        proof: None,
        frontend: false,
        strict: false,
        concurrency: false,
    };
    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--machine" => opts.machine = value()?,
            "--lambda" => opts.lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--window" => {
                let w: usize = value()?.parse().map_err(|e| format!("--window: {e}"))?;
                if w == 0 {
                    return Err("--window must be at least 1".into());
                }
                opts.window = Some(w);
            }
            "--json" => opts.json = true,
            "--proof" => opts.proof = Some(value()?),
            "--parallel" => opts.parallel = true,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
                opts.parallel = true;
            }
            "--no-optimize" => opts.optimize = false,
            "--frontend" => opts.frontend = true,
            "--strict" => opts.strict = true,
            "--concurrency" => opts.concurrency = true,
            "--help" | "-h" => usage(),
            "-" => opts.inputs.push("-".into()),
            other if !other.starts_with('-') => opts.inputs.push(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Print reports (text or a JSON array); exit 1 when any has errors —
/// or, under `--strict`, any warnings.
fn emit_reports(reports: &[analyze::Report], json: bool, strict: bool) -> ExitCode {
    let failed = reports
        .iter()
        .any(|r| r.has_errors() || (strict && r.count(analyze::Severity::Warning) > 0));
    if json {
        let arr =
            pipesched::json::Json::Array(reports.iter().map(analyze::Report::to_json).collect());
        println!("{}", arr.to_pretty());
    } else {
        for r in reports {
            print!("{}", r.render_text());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Load every block of an input: a tuple file holds one block; labeled
/// source programs compile to one block per region. Optimized blocks go
/// through [`optimize_checked`] (translation validation).
fn load_blocks_from(input: &str, optimize: bool) -> Result<Vec<BasicBlock>, String> {
    let text = read_input(input)?;
    if text.trim_start().starts_with(";; tuples") {
        return Ok(vec![parse_block(input, &text).map_err(|e| e.to_string())?]);
    }
    if optimize {
        let regions = parse_labeled_program(&text).map_err(|e| e.to_string())?;
        regions
            .into_iter()
            .map(|(name, program)| {
                let block = pipesched::frontend::lower(&name, &program);
                optimize_checked(&block).map(|(optimized, _)| optimized)
            })
            .collect()
    } else {
        Ok(vec![
            compile_unoptimized(input, &text).map_err(|e| e.to_string())?
        ])
    }
}

/// Recursively collect `.src` and `.tuples` files under `dir`.
fn collect_source_files(dir: &std::path::Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_source_files(&path, out)?;
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("src") | Some("tuples")
        ) {
            out.push(path.display().to_string());
        }
    }
    Ok(())
}

/// Expand lint inputs: directories become their (sorted) `.src`/`.tuples`
/// files; plain files and `-` pass through.
fn expand_inputs(inputs: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for input in inputs {
        let path = std::path::Path::new(input);
        if input != "-" && path.is_dir() {
            let mut files = Vec::new();
            collect_source_files(path, &mut files)?;
            files.sort();
            if files.is_empty() {
                return Err(format!("{input}: no .src or .tuples files found"));
            }
            out.extend(files);
        } else {
            out.push(input.clone());
        }
    }
    Ok(out)
}

/// Line number (1-based) of each tuple row in a `;; tuples` file, for
/// anchoring diagnostics to `file:line`.
fn tuple_line_numbers(text: &str) -> Vec<usize> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| {
            let t = line.trim_start();
            !t.is_empty() && !t.starts_with(";;") && t.contains(':')
        })
        .map(|(i, _)| i + 1)
        .collect()
}

/// Lint one input file: one report per block/region, with diagnostics
/// anchored to `file:line` wherever the source position is known. With
/// optimization on, the optimizer runs under translation validation and
/// a rejected transcript joins the reports; `--frontend` additionally
/// lints the optimized block.
fn lint_input(input: &str, opts: &AnalyzeOptions) -> Result<Vec<analyze::Report>, String> {
    let text = read_input(input)?;
    let mut reports = Vec::new();
    if text.trim_start().starts_with(";; tuples") {
        let block = parse_block(input, &text).map_err(|e| e.to_string())?;
        let lines = tuple_line_numbers(&text);
        let mut report = analyze::check_block(&block);
        report.context = format!("{input}: {}", report.context);
        report.annotate_locations(|t| lines.get(t.index()).map(|l| format!("{input}:{l}")));
        reports.push(report);
        return Ok(reports);
    }
    let regions = parse_labeled_program(&text).map_err(|e| e.to_string())?;
    for (name, program) in regions {
        let (block, lines) = lower_with_lines(&name, &program);
        let mut report = analyze::check_block(&block);
        report.context = format!("{input}: {}", report.context);
        report.annotate_locations(|t| {
            lines
                .get(t.index())
                .filter(|&&l| l != 0)
                .map(|l| format!("{input}:{l}"))
        });
        reports.push(report);
        if opts.optimize {
            match analyze::optimize_verified(&block, &OptConfig::default()) {
                Ok((optimized, _)) => {
                    if opts.frontend {
                        let mut opt_report = analyze::check_block(&optimized);
                        opt_report.context = format!("{input}: optimized {}", opt_report.context);
                        reports.push(opt_report);
                    }
                }
                Err(rej) => {
                    let mut report = rej.report;
                    report.context = format!("{input}: {}", report.context);
                    reports.push(report);
                }
            }
        }
    }
    Ok(reports)
}

/// `pipesched lint --concurrency`: the static lock-order scan from
/// `pipesched-check` over Rust sources (default: this workspace's own
/// `crates/` and `src/`). Every observed `held -> acquired` edge is
/// advisory `A0707` context; a cycle in the edge graph is an `A0702`
/// error. The scan keys locks by field name, so it over-approximates —
/// it is a reviewable report, not a proof; the model checker's dynamic
/// edges cover the soundness side.
fn concurrency_report(inputs: &[String]) -> analyze::Report {
    let roots: Vec<std::path::PathBuf> = if inputs.is_empty() {
        // Sweep every workspace crate except `crates/check`: the checker's
        // sources and harnesses contain deliberately buggy lock-order
        // fixtures (the mutation suite), which would always "fail" here.
        let mut roots: Vec<std::path::PathBuf> = std::fs::read_dir("crates")
            .map(|entries| {
                entries
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "check"))
                    .collect()
            })
            .unwrap_or_default();
        roots.sort();
        roots.push("src".into());
        roots
    } else {
        inputs.iter().map(std::path::PathBuf::from).collect()
    };
    let scan = pipesched::check::lockorder::scan_paths(&roots);
    let mut report = analyze::Report::new(format!(
        "concurrency: lock order over {} file(s), {} lock site(s)",
        scan.files, scan.sites
    ));
    for edge in &scan.edges {
        report.push(
            analyze::Diagnostic::new(
                analyze::DiagCode::LockOrderEdge,
                format!("`{}` acquired while holding `{}`", edge.acquired, edge.held),
            )
            .at_location(format!("{}:{}", edge.file, edge.line)),
        );
    }
    for cycle in &scan.cycles {
        report.push(
            analyze::Diagnostic::new(
                analyze::DiagCode::LockOrderCycle,
                format!("inconsistent acquisition order: {}", cycle.join(" -> ")),
            )
            .with_hint("acquire these locks in one global order everywhere"),
        );
    }
    report
}

/// `pipesched lint`: machine-description lints plus IR checks per input.
/// Inputs may be files, directories (searched recursively for `.src` and
/// `.tuples`), or `-`; each block gets its own report. With
/// `--concurrency`, runs the lock-order source scan instead.
fn run_lint() -> Result<ExitCode, String> {
    let opts = parse_analyze_options()?;
    if opts.concurrency {
        let report = concurrency_report(&opts.inputs);
        return Ok(emit_reports(&[report], opts.json, opts.strict));
    }
    let machine = load_machine(&opts.machine)?;
    let mut reports = vec![analyze::check_machine(&machine)];
    for input in &expand_inputs(&opts.inputs)? {
        reports.extend(lint_input(input, &opts)?);
    }
    Ok(emit_reports(&reports, opts.json, opts.strict))
}

/// `pipesched certify`: schedule each input, certify the result against
/// the independent re-derivation, and cross-check all schedulers.
fn run_certify() -> Result<ExitCode, String> {
    let opts = parse_analyze_options()?;
    if opts.inputs.is_empty() {
        return Err("certify needs at least one input".into());
    }
    if opts.proof.is_some() && (opts.window.is_some() || opts.parallel) {
        return Err(
            "--proof requires the plain branch-and-bound (drop --window/--parallel)".into(),
        );
    }
    let machine = load_machine(&opts.machine)?;
    let mut reports = Vec::new();
    let blocks: Vec<BasicBlock> = opts
        .inputs
        .iter()
        .map(|input| load_blocks_from(input, opts.optimize))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .flatten()
        .collect();
    if opts.proof.is_some() && blocks.len() != 1 {
        return Err("--proof expects exactly one block".into());
    }
    for block in &blocks {
        let dag = DepDag::build(block);
        let ctx = SchedContext::new(block, &dag, &machine);
        let cert = if let Some(window) = opts.window {
            let w = windowed_schedule(&ctx, window, opts.lambda);
            analyze::certify::certify(
                block,
                &machine,
                analyze::Claim {
                    order: &w.order,
                    etas: Some(&w.etas),
                    nops: Some(w.nops),
                    ..analyze::Claim::default()
                },
            )
        } else if opts.parallel {
            let out = pipesched::core::parallel::parallel_search(
                &ctx,
                &SearchConfig::with_lambda(opts.lambda),
                &pipesched::core::ParallelConfig::with_threads(opts.threads),
            );
            analyze::certify::certify(
                block,
                &machine,
                analyze::Claim {
                    order: &out.order,
                    assignment: Some(&out.assignment),
                    etas: Some(&out.etas),
                    nops: Some(out.nops),
                },
            )
        } else {
            let out = Scheduler::new(machine.clone())
                .with_lambda(opts.lambda)
                .schedule_with_dag(block, &dag);
            analyze::certify_scheduled(block, &machine, &out)
        };
        let claimed_nops = cert.derived_nops;
        let mut report = cert.report;
        report.merge(analyze::cross_check(block, &machine, opts.lambda));

        // `--proof FILE`: escalate from certification to an optimality
        // proof — stream a certificate, read it back, and replay it
        // through the independent checker; its verdict (and any A04xx
        // rejection) joins the report.
        if let Some(path) = &opts.proof {
            let (check, trailer_nops) = prove_to_file(&ctx, block, &machine, opts.lambda, path)?;
            if check.is_certified() {
                if let (Some(claimed), Some(trailer)) = (claimed_nops, trailer_nops) {
                    if claimed != u64::from(trailer) {
                        report.push(analyze::Diagnostic::new(
                            analyze::DiagCode::IncumbentRegression,
                            format!(
                                "certified schedule claims μ {claimed} but the \
                                     optimality certificate proves μ {trailer}"
                            ),
                        ));
                    }
                }
            }
            report.merge(check.report);
        }
        reports.push(report);
    }
    Ok(emit_reports(&reports, opts.json, opts.strict))
}

/// Run the certificate-logged search streaming to `path`, read the file
/// back, and check it. Returns the checker's result plus the certificate's
/// claimed μ.
fn prove_to_file(
    ctx: &SchedContext<'_>,
    block: &BasicBlock,
    machine: &Machine,
    lambda: u64,
    path: &str,
) -> Result<(pipesched::proof::ProofCheck, Option<u32>), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let logger = ProofLogger::streaming(Box::new(std::io::BufWriter::new(file)));
    let cfg = SearchConfig {
        lambda,
        ..SearchConfig::default()
    };
    let (_, proof) = search_with_proof(ctx, &cfg, logger);
    if let Some(e) = proof.io_error {
        return Err(format!("write {path}: {e}"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let cert = Certificate::from_ndjson(&text).map_err(|e| format!("{path}: {e}"))?;
    if cert.digest() != proof.digest {
        return Err(format!("{path}: digest mismatch after round trip"));
    }
    let trailer_nops = cert.trailer.nops;
    Ok((
        pipesched::proof::check_certificate(block, machine, &cert),
        Some(trailer_nops),
    ))
}

/// `pipesched prove`: schedule each input with certificate logging and
/// verify the transcript with the independent checker. Exit failure unless
/// every block comes back `OptimalCertified`.
fn run_prove() -> Result<ExitCode, String> {
    let opts = parse_analyze_options()?;
    if opts.inputs.is_empty() {
        return Err("prove needs at least one input".into());
    }
    if opts.window.is_some() || opts.parallel {
        return Err("prove uses the plain branch-and-bound (drop --window/--parallel)".into());
    }
    let machine = load_machine(&opts.machine)?;
    let mut blocks: Vec<(String, BasicBlock)> = Vec::new();
    for input in &opts.inputs {
        for block in load_blocks_from(input, opts.optimize)? {
            let label = if block.name.is_empty() {
                input.clone()
            } else {
                format!("{input}:{}", block.name)
            };
            blocks.push((label, block));
        }
    }
    if opts.proof.is_some() && blocks.len() != 1 {
        return Err("--proof expects exactly one block".into());
    }

    let mut failed = false;
    let mut results = Vec::new();
    for (label, block) in &blocks {
        let dag = DepDag::build(block);
        let ctx = SchedContext::new(block, &dag, &machine);
        let (check, digest, events) = if let Some(path) = &opts.proof {
            let (check, _) = prove_to_file(&ctx, block, &machine, opts.lambda, path)?;
            (check, None, None)
        } else {
            let cfg = SearchConfig {
                lambda: opts.lambda,
                ..SearchConfig::default()
            };
            let (_, cert) = pipesched::core::prove(&ctx, &cfg);
            let digest = cert.digest();
            let events = cert.events.len() as u64;
            (
                pipesched::proof::check_certificate(block, &machine, &cert),
                Some(digest),
                Some(events),
            )
        };
        let (verdict, nops) = match check.verdict {
            pipesched::proof::ProofVerdict::OptimalCertified { nops } => {
                ("optimal-certified", Some(nops))
            }
            pipesched::proof::ProofVerdict::Rejected => {
                failed = true;
                ("rejected", None)
            }
        };
        if opts.json {
            results.push(pipesched::json::json_object![
                ("input", label.as_str()),
                ("machine", machine.name.as_str()),
                ("instructions", block.len()),
                ("verdict", verdict),
                (
                    "nops",
                    nops.map_or(pipesched::json::Json::Null, |n| pipesched::json::Json::Int(
                        i64::from(n)
                    ))
                ),
                (
                    "digest",
                    digest.map_or(pipesched::json::Json::Null, |d| pipesched::json::Json::Str(
                        format!("{d:016x}")
                    ))
                ),
                ("report", check.report.to_json()),
            ]);
        } else {
            match nops {
                Some(n) => {
                    let extra = match (digest, events) {
                        (Some(d), Some(ev)) => format!(" ({ev} events, digest {d:016x})"),
                        _ => String::new(),
                    };
                    println!("{label}: optimal-certified, {n} NOPs{extra}");
                }
                None => {
                    println!("{label}: REJECTED");
                    print!("{}", check.report.render_text());
                }
            }
        }
    }
    if opts.json {
        println!("{}", pipesched::json::Json::Array(results).to_pretty());
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// The SAT backend's effort and query trail as a JSON object: solver
/// totals plus one record per descending feasibility query ("μ ≤ N?").
fn solve_stats_json(out: &pipesched::solve::SolveOutcome) -> pipesched::json::Json {
    use pipesched::json::Json;
    let queries: Vec<Json> = out
        .queries
        .iter()
        .map(|q| {
            pipesched::json::json_object![
                ("budget", i64::from(q.budget)),
                ("horizon", i64::from(q.horizon)),
                ("vars", q.vars as i64),
                (
                    "result",
                    match q.result {
                        pipesched::solve::QueryResult::Sat { .. } => "sat",
                        pipesched::solve::QueryResult::Unsat => "unsat",
                        pipesched::solve::QueryResult::Unknown => "unknown",
                    }
                ),
                ("conflicts", q.conflicts as i64),
                ("decisions", q.decisions as i64),
                ("propagations", q.propagations as i64),
            ]
        })
        .collect();
    pipesched::json::json_object![
        ("conflicts", out.stats.conflicts as i64),
        ("decisions", out.stats.decisions as i64),
        ("propagations", out.stats.propagations as i64),
        ("restarts", out.stats.restarts as i64),
        ("learned", out.stats.learned as i64),
        ("queries_sat", i64::from(out.stats.queries_sat)),
        ("queries_unsat", i64::from(out.stats.queries_unsat)),
        ("queries_unknown", i64::from(out.stats.queries_unknown)),
        ("proved_by_bound", out.stats.proved_by_bound),
        ("queries", Json::Array(queries)),
    ]
}

fn run() -> Result<(), String> {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipesched: {e}");
            usage();
        }
    };
    let machine = load_machine(&opts.machine)?;
    if opts.proof.is_some() && (opts.window.is_some() || opts.parallel) {
        return Err(
            "--proof requires the plain branch-and-bound (drop --window/--parallel)".into(),
        );
    }
    if opts.backend != Backend::Bnb
        && (opts.window.is_some() || opts.parallel || opts.proof.is_some())
    {
        return Err(
            "--backend sat/race runs the plain pipeline (drop --window/--parallel/--proof)".into(),
        );
    }
    let (block, opt_stats) = load_block_with_stats(&opts.input, opts.optimize)?;
    let dag = DepDag::build(&block);

    // Schedule. All paths reuse the DAG built above — the facade's
    // `schedule_with_dag` entry point exists so the CLI never pays for a
    // second dependence analysis.
    let sched_start = std::time::Instant::now();
    let mut sat_json = pipesched::json::Json::Null;
    let mut race_json = pipesched::json::Json::Null;
    let (order, etas, nops, initial_nops, optimal, stats) = if opts.backend == Backend::Sat {
        let _s = pipesched::trace::span("backend_sat");
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = pipesched::solve::solve_schedule(&ctx, &pipesched::solve::SolveConfig::default());
        // The SAT trail is independently audited — full certification of
        // the answer plus model re-checks against a rebuilt encoding. A
        // rejection here is a solver bug, never something to serve.
        let report = pipesched::solve::audit::audit_outcome(&block, &machine, &out);
        if report.has_errors() {
            return Err(format!("SAT backend failed its audit:\n{report}"));
        }
        sat_json = solve_stats_json(&out);
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            pipesched::core::SearchStats::default(),
        )
    } else if opts.backend == Backend::Race {
        let _s = pipesched::trace::span("backend_race");
        let ctx = SchedContext::new(&block, &dag, &machine);
        let race_cfg = pipesched::solve::RaceConfig {
            lambda: opts.lambda,
            // Let both finish: the whole point of `--backend race` on the
            // command line (and in CI) is the cross-certification.
            cancel_loser: false,
            ..Default::default()
        };
        let out = pipesched::solve::race(&ctx, &race_cfg);
        let agree = pipesched::solve::audit::cross_check(
            &block,
            out.bnb.optimal,
            out.bnb.nops,
            out.sat.optimal,
            out.sat.nops,
        );
        if out.disagreement || agree.has_errors() {
            return Err(format!(
                "backend disagreement: B&B proved {} NOPs, SAT proved {} NOPs\n{agree}",
                out.bnb.nops, out.sat.nops
            ));
        }
        let report = pipesched::solve::audit::audit_outcome(&block, &machine, &out.sat);
        if report.has_errors() {
            return Err(format!("SAT side of the race failed its audit:\n{report}"));
        }
        race_json = pipesched::json::json_object![
            ("winner", out.winner.name()),
            ("bnb_micros", out.bnb_micros as i64),
            ("sat_micros", out.sat_micros as i64),
            ("bnb_nops", i64::from(out.bnb.nops)),
            ("sat_nops", i64::from(out.sat.nops)),
        ];
        sat_json = solve_stats_json(&out.sat);
        if out.winner == Backend::Sat {
            let sat = out.sat;
            (
                sat.order,
                sat.etas,
                sat.nops,
                sat.initial_nops,
                sat.optimal,
                pipesched::core::SearchStats::default(),
            )
        } else {
            let bnb = out.bnb;
            (
                bnb.order,
                bnb.etas,
                bnb.nops,
                bnb.initial_nops,
                bnb.optimal,
                bnb.stats,
            )
        }
    } else if let Some(window) = opts.window {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w = windowed_schedule(&ctx, window, opts.lambda);
        let truncated = w.stats.truncated;
        (w.order, w.etas, w.nops, w.initial_nops, !truncated, w.stats)
    } else if opts.parallel {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = pipesched::core::parallel::parallel_search(
            &ctx,
            &SearchConfig::with_lambda(opts.lambda),
            &pipesched::core::ParallelConfig::with_threads(opts.threads),
        );
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            out.stats,
        )
    } else if let Some(path) = &opts.proof {
        // Same search, but streaming an optimality certificate to disk as
        // NDJSON while it runs.
        let ctx = SchedContext::new(&block, &dag, &machine);
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        let logger = ProofLogger::streaming(Box::new(std::io::BufWriter::new(file)));
        let cfg = SearchConfig {
            lambda: opts.lambda,
            ..SearchConfig::default()
        };
        let (out, proof) = search_with_proof(&ctx, &cfg, logger);
        if let Some(e) = proof.io_error {
            return Err(format!("write {path}: {e}"));
        }
        eprintln!(
            "; certificate: {} events, digest {:016x} -> {path}",
            proof.events, proof.digest
        );
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            out.stats,
        )
    } else {
        let scheduler = Scheduler::new(machine.clone()).with_lambda(opts.lambda);
        let out = scheduler.schedule_with_dag(&block, &dag);
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            out.stats,
        )
    };
    let wall_micros = sched_start.elapsed().as_micros() as u64;
    let omega = stats.omega_calls;

    // Debug builds certify every schedule the CLI emits: the independent
    // re-derivation in `pipesched-analyze` must agree with the scheduler.
    if cfg!(debug_assertions) {
        let cert = analyze::certify::certify(
            &block,
            &machine,
            analyze::Claim {
                order: &order,
                etas: Some(&etas),
                nops: Some(nops),
                assignment: None,
            },
        );
        assert!(
            cert.is_certified(),
            "schedule failed certification:\n{}",
            cert.report
        );
    }

    // `--json`: machine-readable result with wall-clock and search-node
    // stats; replaces the `--emit` listing.
    if opts.json {
        let order_json: Vec<pipesched::json::Json> = order
            .iter()
            .map(|t| pipesched::json::Json::Int(i64::from(t.0) + 1))
            .collect();
        let etas_json: Vec<pipesched::json::Json> = etas
            .iter()
            .map(|&e| pipesched::json::Json::Int(i64::from(e)))
            .collect();
        let doc = pipesched::json::json_object![
            ("input", opts.input.as_str()),
            ("machine", machine.name.as_str()),
            ("instructions", block.len()),
            ("order", pipesched::json::Json::Array(order_json)),
            ("etas", pipesched::json::Json::Array(etas_json)),
            ("nops", nops),
            ("initial_nops", initial_nops),
            ("total_cycles", block.len() as i64 + i64::from(nops)),
            ("optimal", optimal),
            ("backend", opts.backend.name()),
            ("sat", sat_json),
            ("race", race_json),
            ("omega_calls", omega as i64),
            ("nodes_visited", stats.nodes_visited as i64),
            ("pruned_quick", stats.pruned_quick as i64),
            ("pruned_legality", stats.pruned_legality as i64),
            ("pruned_equivalence", stats.pruned_equivalence as i64),
            ("pruned_bound", stats.pruned_bound as i64),
            ("pruned_symmetry", stats.pruned_symmetry as i64),
            ("complete_schedules", stats.complete_schedules as i64),
            ("improvements", stats.improvements as i64),
            ("proved_by_bound", stats.proved_by_bound),
            ("truncated", stats.truncated),
            ("deadline_hit", stats.deadline_hit),
            ("wall_micros", wall_micros as i64),
            (
                "opt",
                match &opt_stats {
                    Some(s) => pipesched::json::json_object![
                        ("iterations", i64::from(s.iterations)),
                        ("tuples_before", s.tuples_before as i64),
                        ("tuples_after", s.tuples_after as i64),
                        ("constant_folds", i64::from(s.constant_folds)),
                        ("cse_hits", i64::from(s.cse_hits)),
                        ("peephole_hits", i64::from(s.peephole_hits)),
                        ("dce_removals", i64::from(s.dce_removals)),
                        ("fold_rewrites", i64::from(s.fold_rewrites)),
                        ("forward_rewrites", i64::from(s.forward_rewrites)),
                        ("cse_merges", i64::from(s.cse_merges)),
                        ("peephole_rewrites", i64::from(s.peephole_rewrites)),
                        ("dce_deletions", i64::from(s.dce_deletions)),
                        ("total_rewrites", i64::from(s.total_rewrites())),
                    ],
                    None => pipesched::json::Json::Null,
                }
            ),
        ];
        println!("{}", doc.to_pretty());
        return Ok(());
    }

    match opts.emit.as_str() {
        "tuples" => {
            println!(";; tuples");
            print!("{block}");
        }
        "dot" => {
            print!("{}", dot::to_dot(&block, &dag));
        }
        "padded" => {
            let padded = pad_schedule(&order, &etas);
            print!("{}", padded.listing(&block));
        }
        "trace" => {
            let tm = TimingModel::new(&block, &dag, &machine);
            let trace = Trace::capture(&tm, &order);
            print!("{}", trace.render(&block));
        }
        "gantt" => {
            let tm = TimingModel::new(&block, &dag, &machine);
            let labels: Vec<String> = machine
                .pipelines()
                .iter()
                .map(|p| p.function.clone())
                .collect();
            let gantt = pipesched::sim::chart(&tm, &order, &labels);
            print!("{}", gantt.render());
        }
        "asm" => {
            let pressure = max_pressure(&block, &order);
            let regs = opts.regs.unwrap_or(pressure);
            let assignment = allocate(&block, &order, regs).map_err(|e| e.to_string())?;
            let program = emit(&block, &order, &etas, &assignment).map_err(|e| e.to_string())?;
            print!("{program}");
        }
        "stats" => {
            // Run the plain search too so stats reflect the standard path.
            let ctx = SchedContext::new(&block, &dag, &machine);
            let out = search(&ctx, &SearchConfig::with_lambda(opts.lambda));
            let structure = pipesched::ir::BlockStats::collect(&block, &dag);
            println!("machine:            {}", machine.name);
            print!("{structure}");
            println!("initial (list) NOPs:{:>6}", out.initial_nops);
            println!("final NOPs:         {:>6}", out.nops);
            println!(
                "total cycles:       {:>6}",
                block.len() as u64 + u64::from(out.nops)
            );
            println!("omega calls:        {:>6}", out.stats.omega_calls);
            println!("provably optimal:   {}", out.optimal);
            return Ok(());
        }
        other => return Err(format!("unknown --emit `{other}`")),
    }

    eprintln!(
        "; {} instructions, {} -> {} NOPs, {} Ω calls, {}{}",
        block.len(),
        initial_nops,
        nops,
        omega,
        if optimal { "optimal" } else { "truncated" },
        if opts.backend == Backend::Bnb {
            String::new()
        } else {
            format!(" via {}", opts.backend)
        }
    );
    Ok(())
}

/// `pipesched serve`: answer NDJSON scheduling requests from stdin or TCP.
fn run_serve() -> Result<ExitCode, String> {
    let mut workers = 4usize;
    let mut nodes = pipesched::service::EngineConfig::default().default_nodes;
    let mut cache_capacity = 1024usize;
    let mut shards = 8usize;
    let mut tcp: Option<String> = None;
    let mut conns: Option<u64> = None;
    let mut cache_file: Option<String> = None;
    let mut dump_metrics = false;
    let mut trace = false;
    let mut verify_opt = false;
    let mut backend = Backend::Bnb;
    let mut threads = 1usize;
    let mut flight_on = true;

    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--workers" => workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--nodes" => nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--threads" => threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--cache" => cache_capacity = value()?.parse().map_err(|e| format!("--cache: {e}"))?,
            "--shards" => shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--tcp" => tcp = Some(value()?),
            "--conns" => conns = Some(value()?.parse().map_err(|e| format!("--conns: {e}"))?),
            "--cache-file" => cache_file = Some(value()?),
            "--metrics" => dump_metrics = true,
            "--trace" => trace = true,
            "--no-flight" => flight_on = false,
            "--verify-opt" => verify_opt = true,
            "--backend" => {
                let name = value()?;
                backend = Backend::from_name(&name)
                    .ok_or_else(|| format!("--backend: unknown backend `{name}` (bnb|sat|race)"))?;
            }
            "--help" | "-h" => usage(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if trace {
        // Every request records a span tree; responses carry `trace_id`
        // and `GET /trace/<id>` on the TCP port serves the dump.
        pipesched::trace::set_enabled(true);
    }
    if flight_on {
        // The flight recorder is on by default: one wide event per
        // request into a bounded ring, frozen as an NDJSON dump when an
        // anomaly fires. Disabled-path cost when opted out is a single
        // relaxed load (`--no-flight`, measured by `repro observe`).
        pipesched::trace::flight::set_enabled(true);
    }

    let mut engine_config = pipesched::service::EngineConfig {
        default_nodes: nodes,
        backend,
        threads,
        ..Default::default()
    };
    engine_config.verify_opt |= verify_opt;
    let engine = pipesched::service::ServiceEngine::new(engine_config, cache_capacity, shards);
    if let Some(path) = &cache_file {
        let loaded = engine.cache().load_from_path(path)?;
        if loaded > 0 {
            eprintln!("; loaded {loaded} cached schedules from {path}");
        }
    }
    let config = pipesched::service::ServeConfig { workers };

    let handled = if let Some(addr) = tcp {
        let listener =
            std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!(
            "; serving on {}",
            listener.local_addr().map_err(|e| e.to_string())?
        );
        pipesched::service::serve_tcp(&engine, listener, &config, conns)
            .map_err(|e| e.to_string())?
    } else {
        let stdin = std::io::stdin();
        pipesched::service::serve_stream(&engine, stdin.lock(), std::io::stdout(), &config)
            .map_err(|e| e.to_string())?
    };

    if let Some(path) = &cache_file {
        engine.cache().save_to_path(path)?;
        eprintln!(
            "; saved {} cached schedules to {path}",
            engine.cache().len()
        );
    }
    if dump_metrics {
        eprintln!("{}", engine.metrics().to_json().to_pretty());
    }
    eprintln!("; {handled} requests served");
    Ok(ExitCode::SUCCESS)
}

/// `pipesched batch`: replay an NDJSON request file, print throughput, and
/// optionally gate on certification and cache behaviour (the CI smoke).
fn run_batch_cmd() -> Result<ExitCode, String> {
    let mut input: Option<String> = None;
    let mut workers = 4usize;
    let mut nodes = pipesched::service::EngineConfig::default().default_nodes;
    let mut cache_capacity = 1024usize;
    let mut check = false;
    let mut prove = false;
    let mut require_hits = false;
    let mut json = false;
    let mut quiet = false;
    let mut tcp: Option<String> = None;
    let mut verify_opt = false;
    let mut backend = Backend::Bnb;
    let mut threads = 1usize;

    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--workers" => workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--nodes" => nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--threads" => threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--cache" => cache_capacity = value()?.parse().map_err(|e| format!("--cache: {e}"))?,
            "--check" => check = true,
            "--prove" => prove = true,
            "--require-hits" => require_hits = true,
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--tcp" => tcp = Some(value()?),
            "--verify-opt" => verify_opt = true,
            "--backend" => {
                let name = value()?;
                backend = Backend::from_name(&name)
                    .ok_or_else(|| format!("--backend: unknown backend `{name}` (bnb|sat|race)"))?;
            }
            "--help" | "-h" => usage(),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let input = input.ok_or("missing request file")?;
    if prove && !check {
        return Err("--prove requires --check".into());
    }
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?
    };

    let summary = if let Some(addr) = &tcp {
        // Client mode: replay the file against a running `pipesched serve
        // --tcp` and summarize the responses here. Certification (and even
        // proof replay) work client-side — both only need the request and
        // response text — but the search-effort fields stay zero: that
        // work happened in the server process (scrape its /metrics).
        replay_tcp(addr, &text, check, prove)?
    } else {
        let mut engine_config = pipesched::service::EngineConfig {
            default_nodes: nodes,
            prove,
            backend,
            threads,
            ..Default::default()
        };
        engine_config.verify_opt |= verify_opt;
        let engine = pipesched::service::ServiceEngine::new(engine_config, cache_capacity, 8);
        pipesched::service::run_batch(
            &engine,
            &text,
            &pipesched::service::ServeConfig { workers },
            check,
            prove,
        )
        .map_err(|e| e.to_string())?
    };

    if !quiet {
        for line in &summary.responses {
            println!("{line}");
        }
    }
    if json {
        eprintln!("{}", summary.to_json().to_pretty());
    } else {
        eprintln!(
            "; {} requests in {:.1} ms ({:.0} req/s): {} ok, {} errors, {} cache hits, {} truncated{}",
            summary.requests,
            summary.wall_micros as f64 / 1000.0,
            summary.throughput(),
            summary.ok,
            summary.errors,
            summary.cache_hits,
            summary.truncated,
            if check {
                format!(
                    ", {} certified / {} failed{}",
                    summary.certified,
                    summary.certify_failures,
                    if prove {
                        format!(
                            ", {} proved / {} proof failures",
                            summary.proved, summary.proof_failures
                        )
                    } else {
                        String::new()
                    }
                )
            } else {
                String::new()
            }
        );
    }

    let mut failed = summary.errors > 0;
    if check && (summary.certify_failures > 0 || summary.certified != summary.ok) {
        eprintln!("pipesched: certification gate failed");
        failed = true;
    }
    if prove && summary.proof_failures > 0 {
        eprintln!("pipesched: proof-replay gate failed");
        failed = true;
    }
    if require_hits && summary.cache_hits == 0 {
        eprintln!("pipesched: expected cache hits, saw none");
        failed = true;
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Stream a request file to a running `pipesched serve --tcp` server and
/// summarize the responses client-side. A writer thread feeds the socket
/// while the main thread drains responses, so large files cannot deadlock
/// on filled kernel buffers.
fn replay_tcp(
    addr: &str,
    text: &str,
    check: bool,
    prove: bool,
) -> Result<pipesched::service::BatchSummary, String> {
    let start = std::time::Instant::now();
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let responses_text = std::thread::scope(|scope| -> Result<String, String> {
        let feeder = scope.spawn(move || -> std::io::Result<()> {
            writer.write_all(text.as_bytes())?;
            writer.flush()?;
            writer.shutdown(std::net::Shutdown::Write)
        });
        let mut buf = String::new();
        std::io::BufReader::new(stream)
            .read_to_string(&mut buf)
            .map_err(|e| format!("read {addr}: {e}"))?;
        feeder
            .join()
            .expect("request feeder panicked")
            .map_err(|e| format!("write {addr}: {e}"))?;
        Ok(buf)
    })?;
    let wall_micros = start.elapsed().as_micros() as u64;
    let responses: Vec<String> = responses_text.lines().map(str::to_string).collect();
    // The per-response flag is the only hit signal available remotely.
    let cache_hits = responses
        .iter()
        .filter(|line| {
            pipesched::json::parse(line)
                .ok()
                .and_then(|d| d.get("cache_hit").and_then(pipesched::json::Json::as_bool))
                == Some(true)
        })
        .count() as u64;
    Ok(pipesched::service::summarize_responses(
        text,
        responses,
        wall_micros,
        cache_hits,
        check,
        prove,
    ))
}

/// One HTTP/1.0 GET against a serving port; returns the response body or
/// an error for any non-200 status.
fn http_get_body(addr: &str, path: &str) -> Result<String, String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: pipesched\r\n\r\n")
        .map_err(|e| format!("write {addr}: {e}"))?;
    let mut text = String::new();
    std::io::BufReader::new(stream)
        .read_to_string(&mut text)
        .map_err(|e| format!("read {addr}: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{addr}: server answered `{status}` for {path}"));
    }
    Ok(body.to_string())
}

/// Indented `key: value` rendering of a stats JSON document.
fn render_stats_human(doc: &pipesched::json::Json, indent: usize, out: &mut String) {
    if let pipesched::json::Json::Object(pairs) = doc {
        for (key, value) in pairs {
            match value {
                pipesched::json::Json::Object(_) => {
                    out.push_str(&format!("{}{key}:\n", " ".repeat(indent)));
                    render_stats_human(value, indent + 2, out);
                }
                scalar => {
                    out.push_str(&format!(
                        "{}{key}: {}\n",
                        " ".repeat(indent),
                        scalar.to_compact()
                    ));
                }
            }
        }
    } else {
        out.push_str(&doc.to_compact());
        out.push('\n');
    }
}

/// `pipesched stats`: engine metrics, cache shards, and prune-rule totals —
/// either by replaying a request file locally or by scraping a running
/// server's `/stats` (or `/metrics` with `--prom`) endpoint.
fn run_stats() -> Result<ExitCode, String> {
    let mut input: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut json = false;
    let mut prom = false;
    let mut workers = 4usize;
    let mut nodes = pipesched::service::EngineConfig::default().default_nodes;

    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--tcp" => tcp = Some(value()?),
            "--json" => json = true,
            "--prom" => prom = true,
            "--workers" => workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--nodes" => nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--help" | "-h" => usage(),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if json && prom {
        return Err("--json and --prom are mutually exclusive".into());
    }

    if let Some(addr) = &tcp {
        if prom {
            print!("{}", http_get_body(addr, "/metrics")?);
        } else {
            let body = http_get_body(addr, "/stats")?;
            if json {
                print!("{body}");
            } else {
                let doc = pipesched::json::parse(&body)
                    .map_err(|e| format!("{addr}: bad /stats JSON: {e}"))?;
                let mut text = String::new();
                render_stats_human(&doc, 0, &mut text);
                print!("{text}");
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Local mode: replay a request file through a fresh engine, then dump
    // that engine's stats.
    let input = input.ok_or("stats needs a request file or --tcp ADDR")?;
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?
    };
    let engine = pipesched::service::ServiceEngine::new(
        pipesched::service::EngineConfig {
            default_nodes: nodes,
            ..Default::default()
        },
        1024,
        8,
    );
    pipesched::service::run_batch(
        &engine,
        &text,
        &pipesched::service::ServeConfig { workers },
        false,
        false,
    )
    .map_err(|e| e.to_string())?;

    if prom {
        print!("{}", engine.prometheus());
    } else if json {
        println!("{}", engine.stats_json().to_pretty());
    } else {
        let mut out = String::new();
        render_stats_human(&engine.stats_json(), 0, &mut out);
        print!("{out}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `pipesched trace`: schedule one input with tracing and per-depth search
/// profiling enabled, then render the span tree (default), folded
/// flamegraph stacks (`--flame`), or the raw NDJSON dump (`--ndjson`).
fn run_trace() -> Result<ExitCode, String> {
    let mut input: Option<String> = None;
    let mut machine_spec = "paper-simulation".to_string();
    let mut lambda = 50_000u64;
    let mut optimize = true;
    let mut flame = false;
    let mut ndjson = false;

    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--machine" => machine_spec = value()?,
            "--lambda" => lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--no-optimize" => optimize = false,
            "--flame" => flame = true,
            "--ndjson" => ndjson = true,
            "--help" | "-h" => usage(),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let input = input.ok_or("trace needs an input")?;
    if flame && ndjson {
        return Err("--flame and --ndjson are mutually exclusive".into());
    }
    let machine = load_machine(&machine_spec)?;

    // Record the whole pipeline under one trace: frontend passes fire
    // their own spans inside `compile`, and the search runs with the
    // per-depth profile attached — the same search (same λ, same default
    // config) the `schedule` pipeline runs, so node counts line up with
    // `pipesched <input> --json`.
    pipesched::trace::set_enabled(true);
    pipesched::trace::begin(&input);
    let mut profile = pipesched::core::SearchProfile::new();
    let outcome = {
        let _root = pipesched::trace::span("pipesched");
        let block = load_block_from(&input, optimize)?;
        let dag = {
            let _s = pipesched::trace::span("dag_build");
            DepDag::build(&block)
        };
        let ctx = SchedContext::new(&block, &dag, &machine);
        let _s = pipesched::trace::span("search");
        let out = pipesched::core::search_with_profile(
            &ctx,
            &SearchConfig::with_lambda(lambda),
            &mut profile,
        );
        for (depth, d) in profile.depths.iter().enumerate() {
            pipesched::trace::point2("bnb_depth_nodes", depth as i64, d.nodes as i64);
            pipesched::trace::point2("bnb_depth_omega", depth as i64, d.omega_calls as i64);
            pipesched::trace::point2(
                "bnb_depth_pruned_bound",
                depth as i64,
                d.pruned_bound as i64,
            );
        }
        out
    };
    let trace = pipesched::trace::end().ok_or("trace recorder returned nothing")?;
    pipesched::trace::set_enabled(false);

    if ndjson {
        print!("{}", pipesched::trace::render::to_ndjson(&trace));
        return Ok(ExitCode::SUCCESS);
    }
    if flame {
        // Folded stacks from span self-times, with the search frame broken
        // down further into per-depth frames from the profile.
        let depth_us: Vec<u64> = (0..profile.depths.len())
            .map(|d| profile.self_time_ns(d) / 1_000)
            .collect();
        let depths_total: u64 = depth_us.iter().sum();
        let mut stacks = pipesched::trace::render::folded(&trace);
        for (path, us) in stacks.iter_mut() {
            if path == "pipesched;search" {
                *us = us.saturating_sub(depths_total);
            }
        }
        for (d, us) in depth_us.iter().enumerate() {
            stacks.push((format!("pipesched;search;depth_{d:02}"), *us));
        }
        for (path, us) in &stacks {
            println!("{path} {us}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    print!("{}", pipesched::trace::render::render_text(&trace));
    println!();
    println!("per-depth search profile:");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "depth", "nodes", "omega", "quick", "legality", "equiv", "bound", "self_us"
    );
    for (d, s) in profile.depths.iter().enumerate() {
        println!(
            "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            d,
            s.nodes,
            s.omega_calls,
            s.pruned_quick,
            s.pruned_legality,
            s.pruned_equivalence,
            s.pruned_bound,
            profile.self_time_ns(d) / 1_000,
        );
    }
    println!(
        "total: {} nodes, {} omega calls; schedule: {} NOPs, {}",
        profile.total_nodes(),
        outcome.stats.omega_calls,
        outcome.nops,
        if outcome.optimal {
            "optimal"
        } else {
            "truncated"
        }
    );
    Ok(ExitCode::SUCCESS)
}

/// `pipesched flight`: render the wide-event flight recorder — the last N
/// events as a table (default), raw NDJSON, or folded flame stacks, or
/// the frozen anomaly dumps (`--dumps`). Reads a live server over TCP, or
/// replays a request file through a fresh engine with the recorder on.
fn run_flight() -> Result<ExitCode, String> {
    use pipesched::trace::flight;

    let mut input: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut n = 64usize;
    let mut ndjson = false;
    let mut flame = false;
    let mut dumps = false;
    let mut workers = 4usize;
    let mut nodes = pipesched::service::EngineConfig::default().default_nodes;

    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--tcp" => tcp = Some(value()?),
            "-n" | "--events" => n = value()?.parse().map_err(|e| format!("-n: {e}"))?,
            "--ndjson" => ndjson = true,
            "--flame" => flame = true,
            "--dumps" => dumps = true,
            "--workers" => workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--nodes" => nodes = value()?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--help" | "-h" => usage(),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if (u8::from(ndjson) + u8::from(flame) + u8::from(dumps)) > 1 {
        return Err("--ndjson, --flame, and --dumps are mutually exclusive".into());
    }

    if let Some(addr) = &tcp {
        if dumps {
            print!("{}", http_get_body(addr, "/flight/dumps")?);
            return Ok(ExitCode::SUCCESS);
        }
        let body = http_get_body(addr, &format!("/flight/{n}"))?;
        if ndjson {
            print!("{body}");
            return Ok(ExitCode::SUCCESS);
        }
        // Re-parse the server's NDJSON; the seal survives the round trip,
        // so client-side verification still catches tampering in transit.
        let events: Vec<flight::WideEvent> = body
            .lines()
            .filter_map(flight::WideEvent::from_ndjson)
            .collect();
        let torn = events.iter().filter(|e| !e.verify()).count();
        if flame {
            print!("{}", flight::render_flame(&events));
        } else {
            print!("{}", flight::render_table(&events));
        }
        if torn > 0 {
            eprintln!("; warning: {torn} event(s) failed their self-checksum");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Local mode: replay a request file with the recorder enabled, then
    // render what it captured.
    let input = input.ok_or("flight needs a request file or --tcp ADDR")?;
    let text = read_input(&input)?;
    flight::set_enabled(true);
    flight::reset();
    let engine = pipesched::service::ServiceEngine::new(
        pipesched::service::EngineConfig {
            default_nodes: nodes,
            ..Default::default()
        },
        1024,
        8,
    );
    pipesched::service::run_batch(
        &engine,
        &text,
        &pipesched::service::ServeConfig { workers },
        false,
        false,
    )
    .map_err(|e| e.to_string())?;
    flight::set_enabled(false);

    if dumps {
        for d in flight::dumps() {
            print!("{}", d.to_ndjson());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let events = flight::recent(n);
    if ndjson {
        print!("{}", flight::to_ndjson(&events));
    } else if flame {
        print!("{}", flight::render_flame(&events));
    } else {
        print!("{}", flight::render_table(&events));
    }
    Ok(ExitCode::SUCCESS)
}
