//! `pipesched` — optimal pipeline scheduling from the command line.
//!
//! ```text
//! pipesched <input> [--machine NAME|FILE.json] [--emit WHAT] [--lambda N]
//!                   [--window N] [--parallel] [--no-optimize] [--regs N]
//!
//! <input>      a source file of assignment statements, a tuple file
//!              (first line `;; tuples`), or `-` for stdin
//! --machine    preset name (paper-simulation, paper-table2, deep-pipeline,
//!              functional-units, section2-example, unpipelined) or a JSON
//!              machine description; default paper-simulation
//! --emit       asm | padded | trace | gantt | tuples | dot | stats  (default asm)
//! --lambda     curtail point (default 50000)
//! --window     windowed scheduling with the given window length
//! --parallel   use the parallel branch-and-bound
//! --no-optimize  skip the front-end optimizer
//! --regs       registers available for allocation (default: exactly the
//!              schedule's pressure)
//! ```

use std::io::Read;
use std::process::ExitCode;

use pipesched::core::{search, windowed_schedule, SchedContext, Scheduler, SearchConfig};
use pipesched::frontend::{compile, compile_unoptimized};
use pipesched::ir::{dot, parse::parse_block, BasicBlock, DepDag};
use pipesched::machine::{config as machine_config, presets, Machine};
use pipesched::regalloc::{allocate, emit, max_pressure};
use pipesched::sim::{pad_schedule, TimingModel, Trace};

struct Options {
    input: String,
    machine: String,
    emit: String,
    lambda: u64,
    window: Option<usize>,
    parallel: bool,
    optimize: bool,
    regs: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pipesched <input> [--machine NAME|FILE.json] [--emit asm|padded|trace|gantt|tuples|dot|stats]\n\
         \x20                [--lambda N] [--window N] [--parallel] [--no-optimize] [--regs N]"
    );
    std::process::exit(2)
}

fn parse_options() -> Result<Options, String> {
    let mut input = None;
    let mut opts = Options {
        input: String::new(),
        machine: "paper-simulation".into(),
        emit: "asm".into(),
        lambda: 50_000,
        window: None,
        parallel: false,
        optimize: true,
        regs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{a} requires a value"));
        match a.as_str() {
            "--machine" => opts.machine = value()?,
            "--emit" => opts.emit = value()?,
            "--lambda" => opts.lambda = value()?.parse().map_err(|e| format!("--lambda: {e}"))?,
            "--window" => {
                opts.window = Some(value()?.parse().map_err(|e| format!("--window: {e}"))?)
            }
            "--regs" => opts.regs = Some(value()?.parse().map_err(|e| format!("--regs: {e}"))?),
            "--parallel" => opts.parallel = true,
            "--no-optimize" => opts.optimize = false,
            "--help" | "-h" => usage(),
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string())
            }
            "-" if input.is_none() => input = Some("-".into()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    opts.input = input.ok_or("missing input file")?;
    Ok(opts)
}

fn load_machine(spec: &str) -> Result<Machine, String> {
    match spec {
        "paper-simulation" => Ok(presets::paper_simulation()),
        "paper-table2" => Ok(presets::table2_example()),
        "deep-pipeline" => Ok(presets::deep_pipeline()),
        "functional-units" => Ok(presets::functional_units()),
        "section2-example" => Ok(presets::section2_example()),
        "unpipelined" => Ok(presets::unpipelined()),
        path if path.ends_with(".json") => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            machine_config::from_json(&text).map_err(|e| e.to_string())
        }
        path if path.ends_with(".mach") => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            pipesched::machine::textfmt::parse(&text).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown machine `{other}` (preset name, .json or .mach file expected)"
        )),
    }
}

fn load_block(opts: &Options) -> Result<BasicBlock, String> {
    let text = if opts.input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&opts.input).map_err(|e| format!("read {}: {e}", opts.input))?
    };
    // Tuple files start with a `;; tuples` marker; everything else is
    // source text.
    if text.trim_start().starts_with(";; tuples") {
        parse_block("input", &text).map_err(|e| e.to_string())
    } else if opts.optimize {
        compile("input", &text).map_err(|e| e.to_string())
    } else {
        compile_unoptimized("input", &text).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pipesched: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pipesched: {e}");
            usage();
        }
    };
    let machine = load_machine(&opts.machine)?;
    let block = load_block(&opts)?;
    let dag = DepDag::build(&block);

    // Schedule.
    let (order, etas, nops, initial_nops, optimal, omega) = if let Some(window) = opts.window {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let w = windowed_schedule(&ctx, window, opts.lambda);
        let truncated = w.stats.truncated;
        (
            w.order,
            w.etas,
            w.nops,
            w.initial_nops,
            !truncated,
            w.stats.omega_calls,
        )
    } else if opts.parallel {
        let ctx = SchedContext::new(&block, &dag, &machine);
        let out = pipesched::core::parallel::parallel_search(&ctx, opts.lambda, 0);
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            out.stats.omega_calls,
        )
    } else {
        let scheduler = Scheduler::new(machine.clone()).with_lambda(opts.lambda);
        let out = scheduler.schedule(&block);
        (
            out.order,
            out.etas,
            out.nops,
            out.initial_nops,
            out.optimal,
            out.stats.omega_calls,
        )
    };

    match opts.emit.as_str() {
        "tuples" => {
            println!(";; tuples");
            print!("{block}");
        }
        "dot" => {
            print!("{}", dot::to_dot(&block, &dag));
        }
        "padded" => {
            let padded = pad_schedule(&order, &etas);
            print!("{}", padded.listing(&block));
        }
        "trace" => {
            let tm = TimingModel::new(&block, &dag, &machine);
            let trace = Trace::capture(&tm, &order);
            print!("{}", trace.render(&block));
        }
        "gantt" => {
            let tm = TimingModel::new(&block, &dag, &machine);
            let labels: Vec<String> = machine
                .pipelines()
                .iter()
                .map(|p| p.function.clone())
                .collect();
            let gantt = pipesched::sim::chart(&tm, &order, &labels);
            print!("{}", gantt.render());
        }
        "asm" => {
            let pressure = max_pressure(&block, &order);
            let regs = opts.regs.unwrap_or(pressure);
            let assignment = allocate(&block, &order, regs).map_err(|e| e.to_string())?;
            let program = emit(&block, &order, &etas, &assignment).map_err(|e| e.to_string())?;
            print!("{program}");
        }
        "stats" => {
            // Run the plain search too so stats reflect the standard path.
            let ctx = SchedContext::new(&block, &dag, &machine);
            let out = search(&ctx, &SearchConfig::with_lambda(opts.lambda));
            let structure = pipesched::ir::BlockStats::collect(&block, &dag);
            println!("machine:            {}", machine.name);
            print!("{structure}");
            println!("initial (list) NOPs:{:>6}", out.initial_nops);
            println!("final NOPs:         {:>6}", out.nops);
            println!("total cycles:       {:>6}", block.len() as u64 + u64::from(out.nops));
            println!("omega calls:        {:>6}", out.stats.omega_calls);
            println!("provably optimal:   {}", out.optimal);
            return Ok(());
        }
        other => return Err(format!("unknown --emit `{other}`")),
    }

    eprintln!(
        "; {} instructions, {} -> {} NOPs, {} Ω calls, {}",
        block.len(),
        initial_nops,
        nops,
        omega,
        if optimal { "optimal" } else { "truncated" }
    );
    Ok(())
}
