#![warn(missing_docs)]

//! Umbrella crate re-exporting the `pipesched` workspace public API.
pub use pipesched_analyze as analyze;
pub use pipesched_check as check;
pub use pipesched_core as core;
pub use pipesched_frontend as frontend;
pub use pipesched_ir as ir;
pub use pipesched_json as json;
pub use pipesched_machine as machine;
pub use pipesched_proof as proof;
pub use pipesched_regalloc as regalloc;
pub use pipesched_service as service;
pub use pipesched_sim as sim;
pub use pipesched_solve as solve;
pub use pipesched_synth as synth;
pub use pipesched_trace as trace;
